"""Tests for workload generators and the data module."""

import numpy as np
import pytest

from repro.data import (
    EvictOldest,
    EvictStalest,
    ExperienceBuffer,
    FIFOSampling,
    FreshnessSampling,
    PartialResponsePool,
    PrioritySampling,
    PromptPool,
    UniformSampling,
    make_sampler,
)
from repro.types import Prompt, Trajectory
from repro.workload import (
    EvolvingLengthDistribution,
    PromptDataset,
    get_env_latency,
    get_length_distribution,
    math_task,
    tool_task,
)


def _make_trajectory(traj_id=0, tokens=100, version=0, prompt_tokens=32):
    prompt = Prompt(prompt_id=traj_id, group_id=0, prompt_tokens=prompt_tokens)
    return Trajectory(traj_id=traj_id, prompt=prompt, target_tokens=tokens,
                      weight_version=version)


# --------------------------------------------------------------------------- workload
def test_length_distribution_long_tail_skew():
    """Fig 2: the p99/p50 ratio is close to an order of magnitude."""
    dist = get_length_distribution("math", "7B")
    assert 5.0 <= dist.skew_ratio() <= 25.0
    rng = np.random.default_rng(0)
    samples = dist.sample(rng, 10_000)
    assert samples.min() >= dist.min_tokens
    assert samples.max() <= dist.max_tokens


def test_length_distribution_difficulty_shifts_tail():
    dist = get_length_distribution("math", "7B")
    rng = np.random.default_rng(1)
    easy = dist.sample(rng, 20_000, difficulty=[0.05] * 20_000).mean()
    hard = dist.sample(rng, 20_000, difficulty=[0.95] * 20_000).mean()
    assert hard > easy


def test_evolving_length_distribution_grows_and_caps():
    base = get_length_distribution("math", "7B")
    evolving = EvolvingLengthDistribution(base=base, growth_per_iteration=1.05, max_growth=2.0)
    later = evolving.at_iteration(50)
    assert later.body_median == pytest.approx(base.body_median * 2.0)
    with pytest.raises(ValueError):
        evolving.at_iteration(-1)


def test_env_latency_distribution_shape():
    dist = get_env_latency("code-sandbox")
    rng = np.random.default_rng(2)
    samples = dist.sample(rng, 50_000)
    assert samples.min() >= dist.min_latency
    assert samples.max() <= dist.max_latency
    assert np.percentile(samples, 99) > 5 * np.percentile(samples, 50)


def test_prompt_dataset_group_structure():
    dataset = PromptDataset(math_task("7B"), num_questions=100, seed=0)
    rng = np.random.default_rng(0)
    prompts = dataset.sample_batch(4, rng)
    assert len(prompts) == 4 * 16
    groups = {}
    for prompt in prompts:
        groups.setdefault(prompt.group_id, []).append(prompt)
    assert len(groups) == 4
    for members in groups.values():
        assert len(members) == 16
        assert len({m.difficulty for m in members}) == 1  # same underlying question


def test_tool_task_is_multi_turn():
    task = tool_task("7B", max_turns=8)
    assert task.multi_turn
    dataset = PromptDataset(task, num_questions=10, seed=0)
    prompts = dataset.sample_batch(1, np.random.default_rng(0))
    assert all(p.multi_turn and p.max_turns == 8 for p in prompts)


# --------------------------------------------------------------------------- prompt pool
def test_prompt_pool_take_and_refill():
    dataset = PromptDataset(math_task("7B"), num_questions=50, seed=0)
    pool = PromptPool(dataset, refill_prompts=8, low_watermark=32)
    taken = pool.take(200)
    assert len(taken) == 200
    assert pool.total_supplied == 200
    pool.put_back(taken[:10])
    assert pool.total_supplied == 190
    again = pool.take(10)
    assert [p.prompt_id for p in again] == [p.prompt_id for p in taken[:10]]


# --------------------------------------------------------------------------- partial response pool
def test_partial_response_pool_lifecycle():
    pool = PartialResponsePool()
    trajectory = _make_trajectory(1, tokens=500)
    pool.register(trajectory, replica_id=3)
    assert 1 in pool and pool.owner(1) == 3
    pool.stream_progress(1, 120)
    assert trajectory.generated_tokens == 120
    with pytest.raises(ValueError):
        pool.stream_progress(1, 50)  # progress cannot go backwards
    pool.migrate(1, new_replica_id=7)
    assert pool.owner(1) == 7
    assert trajectory.repack_count == 1
    finished = pool.complete(1)
    assert finished is trajectory
    assert len(pool) == 0
    with pytest.raises(KeyError):
        pool.complete(1)


def test_partial_response_pool_orphans_of_failed_replicas():
    pool = PartialResponsePool()
    for i in range(6):
        pool.register(_make_trajectory(i), replica_id=i % 2)
    orphans = pool.orphans_of([0])
    assert {t.traj_id for t in orphans} == {0, 2, 4}


# --------------------------------------------------------------------------- experience buffer
def test_experience_buffer_fifo_sampling_removes_items():
    buffer = ExperienceBuffer()
    for i in range(10):
        buffer.write(_make_trajectory(i), reward=1.0, actor_version=0)
    assert buffer.can_sample(4)
    batch = buffer.sample(4)
    assert [exp.trajectory.traj_id for exp in batch] == [0, 1, 2, 3]
    assert len(buffer) == 6
    with pytest.raises(ValueError):
        buffer.sample(100)


def test_experience_buffer_eviction_policies():
    buffer = ExperienceBuffer(capacity=5, evictor=EvictOldest())
    for i in range(8):
        buffer.write(_make_trajectory(i), reward=0.0, actor_version=0)
    assert len(buffer) == 5
    assert buffer.total_evicted == 3
    assert [e.trajectory.traj_id for e in buffer.peek_all()] == [3, 4, 5, 6, 7]

    stale_buffer = ExperienceBuffer(capacity=2, evictor=EvictStalest())
    stale_buffer.write(_make_trajectory(1, version=0), 0.0, actor_version=5)
    stale_buffer.write(_make_trajectory(2, version=5), 0.0, actor_version=5)
    stale_buffer.write(_make_trajectory(3, version=4), 0.0, actor_version=5)
    ids = [e.trajectory.traj_id for e in stale_buffer.peek_all()]
    assert 1 not in ids  # the stalest experience was evicted


def test_sampling_strategies_return_distinct_indices():
    experiences = []
    buffer = ExperienceBuffer()
    for i in range(20):
        buffer.write(_make_trajectory(i, version=i % 3), reward=float(i), actor_version=3,
                     priority=float(i))
    rng = np.random.default_rng(0)
    for strategy in (FIFOSampling(), UniformSampling(), PrioritySampling(), FreshnessSampling()):
        indices = strategy.select(buffer.peek_all(), 8, rng)
        assert len(indices) == 8
        assert len(set(indices)) == 8


def test_freshness_sampling_prefers_low_staleness():
    buffer = ExperienceBuffer(sampler=FreshnessSampling())
    buffer.write(_make_trajectory(1, version=0), 0.0, actor_version=4)  # staleness 4
    buffer.write(_make_trajectory(2, version=4), 0.0, actor_version=4)  # staleness 0
    batch = buffer.sample(1)
    assert batch[0].trajectory.traj_id == 2


def test_make_sampler_registry():
    assert make_sampler("fifo").name == "fifo"
    assert make_sampler("priority", alpha=0.5).alpha == 0.5
    with pytest.raises(KeyError):
        make_sampler("nope")

"""Unit tests for the repro.faults subsystem.

Covers the seeded plan builders (determinism, validation, composition), the
failure-kind registry (unknown kinds raise with the registered list), the
recovery-model dispatch, the network-degradation primitives (RetryPolicy,
LinkSpec.scaled, DegradationWindow) and the engines' straggler slowdown
(vector vs scalar must agree exactly — the bit-identity contract extends to
adversarial runs).
"""

from types import SimpleNamespace

import pytest

from repro.faults import (
    CRASH_KINDS,
    DEFAULT_RACK_SIZE,
    FailureEvent,
    FailureInjector,
    FailureKind,
    FailurePlan,
    RecoveryModel,
    failure_kind_description,
    known_failure_kinds,
    rack_machines,
    register_failure_kind,
)
from repro.sim.network import (
    DegradationWindow,
    LinkSpec,
    RDMA_LINK,
    RetryPolicy,
    bandwidth_factor_at,
)

from test_engine_equivalence import (
    assert_completions_identical,
    assert_engines_identical,
    make_engines,
    make_states,
)


# --------------------------------------------------------------------------- registry
def test_unknown_failure_kind_lists_registered():
    with pytest.raises(ValueError, match="rollout_machine"):
        FailureEvent(time=1.0, kind="cosmic_ray", target=0)
    with pytest.raises(ValueError, match="unknown failure kind"):
        failure_kind_description("cosmic_ray")


def test_reregistering_kind_raises():
    with pytest.raises(ValueError, match="already registered"):
        register_failure_kind(FailureKind.STRAGGLER)


def test_registry_contains_adversarial_kinds():
    kinds = known_failure_kinds()
    for kind in (FailureKind.SPOT_WARNING, FailureKind.SPOT_PREEMPTION,
                 FailureKind.STRAGGLER, FailureKind.STRAGGLER_CLEAR,
                 FailureKind.NETWORK_DEGRADED, FailureKind.NETWORK_RESTORED,
                 FailureKind.LINK_FLAP):
        assert kind in kinds
        assert failure_kind_description(kind)
    assert FailureKind.SPOT_PREEMPTION in CRASH_KINDS
    assert FailureKind.STRAGGLER not in CRASH_KINDS


def test_event_validation():
    with pytest.raises(ValueError, match="non-negative"):
        FailureEvent(time=-1.0, kind=FailureKind.RELAY, target=0)
    with pytest.raises(ValueError, match="factor"):
        FailureEvent(time=0.0, kind=FailureKind.STRAGGLER, target=0, factor=0.0)
    with pytest.raises(ValueError, match="duration"):
        FailureEvent(time=0.0, kind=FailureKind.STRAGGLER, target=0, duration=-1.0)


# --------------------------------------------------------------------------- recovery model
def test_recovery_time_dispatch():
    model = RecoveryModel()
    ok = FailureEvent(time=0.0, kind=FailureKind.ROLLOUT_MACHINE, target=0,
                      reinit_succeeds=True)
    bad = FailureEvent(time=0.0, kind=FailureKind.ROLLOUT_MACHINE, target=0)
    assert model.recovery_time(ok) == model.heartbeat_interval + model.reinit_time
    assert model.recovery_time(bad) == (model.heartbeat_interval + model.reinit_time
                                        + model.machine_replacement_time)
    relay = FailureEvent(time=0.0, kind=FailureKind.RELAY, target=0)
    assert model.recovery_time(relay) == model.chain_rebuild_time
    trainer = FailureEvent(time=0.0, kind=FailureKind.TRAINER, target=0)
    assert model.recovery_time(trainer) == model.trainer_restore_time
    spot = FailureEvent(time=0.0, kind=FailureKind.SPOT_PREEMPTION, target=0)
    assert model.recovery_time(spot) == model.spot_replacement_time
    # Degradation kinds clear via their paired event; zero recovery latency.
    straggler = FailureEvent(time=0.0, kind=FailureKind.STRAGGLER, target=0,
                             factor=2.0)
    assert model.recovery_time(straggler) == 0.0
    with pytest.raises(ValueError, match="registered kinds"):
        model.recovery_time(SimpleNamespace(kind="cosmic_ray"))


# --------------------------------------------------------------------------- plan builders
def test_rack_machines_layout():
    assert rack_machines(0) == list(range(DEFAULT_RACK_SIZE))
    assert rack_machines(2, rack_size=2) == [4, 5]
    with pytest.raises(ValueError):
        rack_machines(-1)
    with pytest.raises(ValueError):
        rack_machines(0, rack_size=0)


@pytest.mark.parametrize("build", [
    lambda seed: FailurePlan.independent(seed, 8, 3600.0, rate_per_machine_hour=2.0),
    lambda seed: FailurePlan.stragglers(seed, 8, (10.0, 50.0), count=3),
    lambda seed: FailurePlan.stragglers(seed, 8, (10.0, 50.0), count=2,
                                        persistent=True),
    lambda seed: FailurePlan.network_degradation(seed, (5.0, 30.0), dips=2,
                                                 flap_machines=[1, 3]),
    lambda seed: FailurePlan.chaos(seed, 8, 120.0),
])
def test_seeded_builders_deterministic(build):
    assert build(7).sorted_events() == build(7).sorted_events()
    assert build(7).sorted_events() != build(8).sorted_events()


def test_sorted_events_total_order():
    plan = FailurePlan()
    plan.add(FailureEvent(time=5.0, kind=FailureKind.TRAINER, target=0))
    plan.add(FailureEvent(time=5.0, kind=FailureKind.RELAY, target=1))
    plan.add(FailureEvent(time=1.0, kind=FailureKind.ROLLOUT_MACHINE, target=2))
    plan.add(FailureEvent(time=5.0, kind=FailureKind.RELAY, target=0))
    ordered = plan.sorted_events()
    assert [(e.time, e.kind, e.target) for e in ordered] == [
        (1.0, "rollout_machine", 2), (5.0, "relay", 0),
        (5.0, "relay", 1), (5.0, "trainer", 0)]
    assert plan.horizon == 5.0


def test_preemption_wave_pairs_warning_and_reclaim():
    plan = FailurePlan.preemption_wave(10.0, [0, 2], warning_lead=8.0)
    events = plan.sorted_events()
    warnings = [e for e in events if e.kind == FailureKind.SPOT_WARNING]
    reclaims = [e for e in events if e.kind == FailureKind.SPOT_PREEMPTION]
    assert [e.target for e in warnings] == [0, 2]
    assert [e.target for e in reclaims] == [0, 2]
    for warning, reclaim in zip(warnings, reclaims):
        assert reclaim.time == warning.time + 8.0


def test_transient_stragglers_emit_paired_clears():
    plan = FailurePlan.stragglers(3, 8, (10.0, 50.0), count=3,
                                  duration_range=(5.0, 10.0))
    sets = [e for e in plan.events if e.kind == FailureKind.STRAGGLER]
    clears = {e.target: e for e in plan.events
              if e.kind == FailureKind.STRAGGLER_CLEAR}
    assert len(sets) == 3 and len(clears) == 3
    for event in sets:
        assert event.factor > 1.0
        assert clears[event.target].time == event.time + event.duration


def test_persistent_stragglers_have_no_clears():
    plan = FailurePlan.stragglers(3, 8, (10.0, 50.0), count=2, persistent=True)
    assert len(plan.events) == 2
    assert all(e.kind == FailureKind.STRAGGLER for e in plan.events)


def test_network_degradation_pairs_dip_and_restore():
    plan = FailurePlan.network_degradation(1, (5.0, 30.0), dips=2,
                                           flap_machines=[4])
    dips = [e for e in plan.events if e.kind == FailureKind.NETWORK_DEGRADED]
    restores = [e for e in plan.events if e.kind == FailureKind.NETWORK_RESTORED]
    flaps = [e for e in plan.events if e.kind == FailureKind.LINK_FLAP]
    assert len(dips) == 2 and len(restores) == 2 and len(flaps) == 1
    for dip, restore in zip(dips, restores):
        assert dip.target == -1 and 0 < dip.factor < 1
        assert restore.time == dip.time + dip.duration
    assert flaps[0].target == 4 and flaps[0].duration > 0


def test_chaos_includes_every_adversity():
    plan = FailurePlan.chaos(0, 8, 120.0)
    kinds = {e.kind for e in plan.events}
    assert FailureKind.ROLLOUT_MACHINE in kinds
    assert FailureKind.SPOT_WARNING in kinds and FailureKind.SPOT_PREEMPTION in kinds
    assert FailureKind.STRAGGLER in kinds
    assert FailureKind.NETWORK_DEGRADED in kinds and FailureKind.LINK_FLAP in kinds
    assert 0 < plan.horizon <= 0.8 * 120.0 + 0.15 * 120.0  # reclaim may trail the lead
    # Never the whole fleet at once.
    wave = [e for e in plan.events if e.kind == FailureKind.ROLLOUT_MACHINE]
    assert 1 <= len(wave) <= 4


def test_builder_validation():
    with pytest.raises(ValueError):
        FailurePlan.independent(0, 0, 100.0)
    with pytest.raises(ValueError):
        FailurePlan.independent(0, 4, -1.0)
    with pytest.raises(ValueError):
        FailurePlan.stragglers(0, 4, (50.0, 10.0))
    with pytest.raises(ValueError):
        FailurePlan.stragglers(0, 4, (10.0, 50.0), count=5)
    with pytest.raises(ValueError):
        FailurePlan.preemption_wave(0.0, [0], warning_lead=-1.0)
    with pytest.raises(ValueError):
        FailurePlan.chaos(0, 1, 100.0)
    with pytest.raises(ValueError):
        FailurePlan.chaos(0, 4, 0.0)


def test_merge_and_injector():
    merged = FailurePlan.rack_wave(15.0, rack=0, rack_size=2).merge(
        FailurePlan.preemption_wave(5.0, [3], warning_lead=2.0))
    injector = merged.build_injector()
    assert injector.next_failure_time() == 5.0
    fired = injector.due(7.0)
    assert [e.kind for e in fired] == [FailureKind.SPOT_WARNING,
                                       FailureKind.SPOT_PREEMPTION]
    assert injector.next_failure_time() == 15.0
    assert len(injector.fired) == 2


# --------------------------------------------------------------------------- network degradation
def test_retry_policy_delay_caps():
    policy = RetryPolicy(base_delay=0.5, multiplier=2.0, max_delay=4.0)
    assert [policy.delay(i) for i in range(5)] == [0.5, 1.0, 2.0, 4.0, 4.0]
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=0)


def test_retry_policy_wait_through():
    policy = RetryPolicy(base_delay=0.5, multiplier=2.0, max_delay=8.0,
                         max_retries=4)
    assert policy.wait_through(0.0) == (0.0, 0)
    # 0.5 + 1.0 = 1.5 covers a 1.2 s outage on the second retry.
    wait, retries = policy.wait_through(1.2)
    assert wait == 1.5 and retries == 2
    # Budget exhausted (0.5+1+2+4 = 7.5 < 100): wait out the outage plus one
    # final capped backoff.
    wait, retries = policy.wait_through(100.0)
    assert wait == 100.0 + 4.0 and retries == 4


def test_link_spec_scaled():
    degraded = RDMA_LINK.scaled(0.25)
    assert degraded.bandwidth == RDMA_LINK.bandwidth * 0.25
    assert degraded.startup == RDMA_LINK.startup
    assert degraded.transfer_time(1e9) > RDMA_LINK.transfer_time(1e9)
    assert RDMA_LINK.scaled(1.0) is RDMA_LINK
    with pytest.raises(ValueError):
        RDMA_LINK.scaled(0.0)


def test_degradation_windows_compound():
    windows = [DegradationWindow(10.0, 20.0, 0.5),
               DegradationWindow(15.0, 30.0, 0.4)]
    assert bandwidth_factor_at(windows, 5.0) == 1.0
    assert bandwidth_factor_at(windows, 12.0) == 0.5
    assert bandwidth_factor_at(windows, 17.0) == 0.5 * 0.4
    assert bandwidth_factor_at(windows, 20.0) == 0.4  # half-open: end excluded
    with pytest.raises(ValueError):
        DegradationWindow(20.0, 10.0, 0.5)
    with pytest.raises(ValueError):
        DegradationWindow(0.0, 10.0, 0.0)


# --------------------------------------------------------------------------- engine slowdown
def test_slowdown_is_bit_identical_across_engines():
    """set_slowdown mid-run (apply, then clear) keeps scalar == vector.

    This is the exact mutation the straggler pathway performs, including the
    carry rescale that keeps the next-event window well-formed when the step
    time shrinks on clearing.
    """
    scalar, vector = make_engines(blocks=256, max_concurrency=24)
    scalar.add_sequences(make_states(11, 30, 0))
    vector.add_sequences(make_states(11, 30, 0))

    def lockstep(duration):
        elapsed = 0.0
        while elapsed < duration:
            s_next, v_next = scalar.next_event_in(), vector.next_event_in()
            assert s_next == v_next
            if s_next is None:
                return
            dt = min(s_next, duration - elapsed)
            assert_completions_identical(scalar.advance(dt), vector.advance(dt))
            elapsed += dt
            assert_engines_identical(scalar, vector)

    lockstep(3.0)
    scalar.set_slowdown(decode=2.5, env=2.5)
    vector.set_slowdown(decode=2.5, env=2.5)
    assert_engines_identical(scalar, vector)
    lockstep(5.0)
    scalar.set_slowdown(decode=1.0, env=1.0)
    vector.set_slowdown(decode=1.0, env=1.0)
    assert_engines_identical(scalar, vector)
    lockstep(40.0)
    assert_engines_identical(scalar, vector)


def test_slowdown_clear_with_large_carry_makes_progress():
    """Clearing a slowdown never wedges the next-event loop (carry rescale)."""
    scalar, vector = make_engines(blocks=256, max_concurrency=24)
    for engine in (scalar, vector):
        engine.add_sequences(make_states(5, 16, 0))
        engine.set_slowdown(decode=4.0)
        engine.advance(engine.next_event_in() * 0.9)  # park carry mid-token
        engine.set_slowdown(decode=1.0)
        for _ in range(200):
            delta = engine.next_event_in()
            if delta is None:
                break
            before = (engine.clock, engine._time_carry, engine.num_sequences)
            engine.advance(delta)
            after = (engine.clock, engine._time_carry, engine.num_sequences)
            assert after != before, "advance made no progress"
    assert_engines_identical(scalar, vector)

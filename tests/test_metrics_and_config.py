"""Tests for metrics time series, run configuration and ablation-style sweeps."""

import pytest

from repro.config import SystemConfig, default_trainer_parallel
from repro.systems import optimal_chunks, broadcast_latency
from repro.llm import QWEN_32B
from repro.metrics import EventCounterSeries, TimeSeries, moving_average
from repro.sim.network import RDMA_SINGLE_NIC_LINK, chain_pipelined_broadcast_time


# --------------------------------------------------------------------------- time series
def test_timeseries_value_at_and_window_mean():
    series = TimeSeries(name="util")
    for t, v in [(0.0, 0.1), (10.0, 0.5), (20.0, 0.9)]:
        series.record(t, v)
    assert series.value_at(-1.0) == 0.0
    assert series.value_at(5.0) == 0.1
    assert series.value_at(25.0) == 0.9
    assert series.window_mean(0.0, 30.0) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        series.window_mean(5.0, 5.0)
    with pytest.raises(ValueError):
        series.record(5.0, 1.0)  # timestamps must not go backwards


def test_event_counter_rate_series():
    counter = EventCounterSeries(name="tokens")
    for t in range(10):
        counter.record(float(t), 100.0)
    rate = counter.rate_series(bucket=5.0)
    assert counter.total() == 1000.0
    assert len(rate) >= 2
    assert rate.values[0] == pytest.approx(100.0)  # 500 tokens / 5 s


def test_moving_average_window():
    values = [0.0, 10.0, 20.0, 30.0]
    smoothed = moving_average(values, window=2)
    assert smoothed == [0.0, 5.0, 15.0, 25.0]
    with pytest.raises(ValueError):
        moving_average(values, window=0)


# --------------------------------------------------------------------------- config validation
def test_system_config_validation_errors():
    parallel = default_trainer_parallel("7B", 8, "verl")
    base = dict(system="verl", model_size="7B", task_type="math", trainer_gpus=8,
                rollout_gpus=0, rollout_tensor_parallel=2, trainer_parallel=parallel)
    assert SystemConfig(**base).colocated
    with pytest.raises(ValueError):
        SystemConfig(**{**base, "task_type": "vision"})
    with pytest.raises(ValueError):
        SystemConfig(**{**base, "global_batch_size": 1000, "num_prompts_per_batch": 300})
    with pytest.raises(ValueError):
        SystemConfig(**{**base, "num_iterations": 2, "warmup_iterations": 2})


def test_default_trainer_parallel_handles_small_gpu_counts():
    # Fewer trainer GPUs than the preferred FSDP group size must still work.
    config = default_trainer_parallel("32B", 8, "one_step")
    assert config.world_size <= 16
    areal = default_trainer_parallel("72B", 32, "areal")
    assert areal.model_shards == 16  # TP=4 x PP=4


def test_system_config_task_group_size_follows_batch_geometry():
    parallel = default_trainer_parallel("7B", 8, "verl")
    config = SystemConfig(system="verl", model_size="7B", task_type="math",
                          trainer_gpus=8, rollout_gpus=0, rollout_tensor_parallel=2,
                          trainer_parallel=parallel, global_batch_size=256,
                          num_prompts_per_batch=32)
    assert config.group_size == 8
    assert config.task().group_size == 8


# --------------------------------------------------------------------------- ablation: chunk sweep
def test_chunk_count_ablation_optimum_matches_k_star():
    """Appendix D ablation: Eq. (1) is minimised near the closed-form k*."""
    nodes = 64
    nbytes = QWEN_32B.weight_bytes
    k_star = optimal_chunks(QWEN_32B, nodes)
    best_time = broadcast_latency(QWEN_32B, nodes)
    for k in (1, 4, 16, 64, 256, 1024, 8192, 65536):
        assert chain_pipelined_broadcast_time(nbytes, nodes, k, RDMA_SINGLE_NIC_LINK) >= best_time * 0.999
    assert k_star >= 1

"""Fleet-stepped vs per-replica-process equivalence: the stepping-mode gate.

The fleet engine (:mod:`repro.runtime.fleet`) replaces N per-replica
``sim.engine`` processes with one fleet process per scenario.  Its contract is
bit-identity: every replica must observe the identical sequence of
``next_event_in`` / ``advance`` calls at the identical simulated instants, so
clocks, stats, trajectories, streamed-completion events and KVCache occupancy
must match the per-replica ``"process"`` mode *exactly* — no tolerances.

The fuzz surface deliberately includes the hard cases: tiny KV pools that
force queueing and preemption storms, multi-turn env waits, repack pulls
mid-window (Laminar), machine/relay/trainer failures mid-window (the fault
drill), the adversarial :mod:`repro.faults` schedules (correlated waves,
spot preemptions, stragglers, degraded networks), and the streamed anchored
barrier whose publications interleave with the trainer.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import make_system_config
from repro.faults import FailurePlan
from repro.llm import QWEN_7B
from repro.rollout import (
    ReplicaGenerationState,
    RolloutReplicaConfig,
    SequenceState,
    TurnSchedule,
)
from repro.runtime import ReplicaFleet, generation_barrier, stepping, stepping_mode
from repro.sim import Environment, KVCacheConfig
from repro.systems import FailureEvent, FailureInjector, FailureKind, LaminarSystem, make_system
from repro.types import Prompt, Trajectory

DECODE_MODEL = RolloutReplicaConfig(QWEN_7B, tensor_parallel=1).decode_model()


# --------------------------------------------------------------------------- barrier fuzz
def make_replicas(seed: int, num_replicas: int, per_replica: int,
                  blocks: int, max_concurrency: int):
    """Seeded random multi-turn workload spread over small-KV replicas."""
    rng = np.random.default_rng(seed)
    replicas = []
    next_id = 0
    for replica_id in range(num_replicas):
        replica = ReplicaGenerationState(
            replica_id=replica_id,
            decode_model=DECODE_MODEL,
            kvcache_config=KVCacheConfig(total_blocks=blocks),
            max_concurrency=max_concurrency,
        )
        states = []
        for _ in range(per_replica):
            num_turns = int(rng.integers(1, 4))
            segments = [int(rng.integers(5, 120)) for _ in range(num_turns)]
            env_latencies = [float(rng.uniform(0.5, 10.0)) for _ in range(num_turns - 1)]
            env_latencies.append(0.0)
            prompt = Prompt(prompt_id=next_id, group_id=0,
                            prompt_tokens=int(rng.integers(16, 64)))
            trajectory = Trajectory(traj_id=next_id, prompt=prompt,
                                    target_tokens=sum(segments))
            states.append(SequenceState(
                trajectory=trajectory,
                schedule=TurnSchedule(segments=segments, env_latencies=env_latencies),
            ))
            next_id += 1
        replica.add_sequences(states)
        replicas.append(replica)
    return replicas


def run_barrier(mode: str, seed: int, barrier_shape: str):
    """One barrier generation under a stepping mode; returns everything observable."""
    with stepping(mode):
        env = Environment()
        replicas = make_replicas(seed, num_replicas=4, per_replica=10,
                                 blocks=96, max_concurrency=8)
        streamed = []

        def on_complete(pos, batch):
            streamed.append((env.now, pos, tuple(t.traj_id for t in batch)))

        def body():
            origin = None if barrier_shape == "plain" else env.now
            observer = on_complete if barrier_shape == "streamed" else None
            outcome = yield from generation_barrier(env, replicas, origin, observer)
            return outcome

        process = env.process(body(), name="barrier")
        outcome = env.run(until=process)
        return {
            "now": env.now,
            "duration": outcome.duration,
            "per_replica_time": outcome.per_replica_time,
            "tokens": outcome.tokens_generated,
            "bubble": outcome.bubble_time,
            "trajectories": [(t.traj_id, t.finish_time, t.replica_id, t.turns_done)
                             for t in outcome.trajectories],
            "clocks": [r.clock for r in replicas],
            "stats": [r.stats for r in replicas],
            "kv": [(r.kvcache.used_blocks, r.kvcache.peak_blocks) for r in replicas],
            "streamed": streamed,
        }


@pytest.mark.parametrize("barrier_shape", ["plain", "anchored", "streamed"])
@pytest.mark.parametrize("seed", range(6))
def test_barrier_fuzz_bit_identity(seed, barrier_shape):
    reference = run_barrier("process", seed, barrier_shape)
    fleet = run_barrier("fleet", seed, barrier_shape)
    assert fleet == reference


def test_barrier_empty_fleet_matches():
    for mode in ("process", "fleet"):
        with stepping(mode):
            env = Environment()

            def body():
                outcome = yield from generation_barrier(env, [])
                return outcome

            outcome = env.run(until=env.process(body()))
            assert outcome.duration == 0.0 and outcome.trajectories == []
            assert env.now == 0.0


# --------------------------------------------------------------------------- system fuzz
def run_system(mode: str, name: str, seed: int = 0, task: str = "math",
               gpus: int = 32, scale: float = 1 / 32, iters: int = 3,
               failure: FailureEvent = None, plan: FailurePlan = None,
               **overrides):
    config = make_system_config(name, "7B", gpus, task_type=task).scaled(scale)
    config = replace(config, num_iterations=iters, warmup_iterations=0,
                     seed=seed, **overrides)
    with stepping(mode):
        assert stepping_mode() == mode
        if failure is not None or plan is not None:
            injector = plan.build_injector() if plan is not None else FailureInjector()
            if failure is not None:
                injector.add(failure)
            system = LaminarSystem(config, failure_injector=injector)
        else:
            system = make_system(config)
        return system.run()


def assert_results_identical(reference, fleet):
    assert fleet.wall_clock == reference.wall_clock
    assert fleet.iterations == reference.iterations
    assert fleet.breakdowns == reference.breakdowns
    assert fleet.staleness_samples == reference.staleness_samples
    assert fleet.extras == reference.extras


ALL_SYSTEMS = ("verl", "one_step", "stream_gen", "semi_sync",
               "areal", "laminar", "laminar_norepack")


@pytest.mark.parametrize("name", ALL_SYSTEMS)
def test_system_run_bit_identity(name):
    """Every orchestration — barrier and continuous — end to end, both modes."""
    reference = run_system("process", name)
    fleet = run_system("fleet", name)
    assert_results_identical(reference, fleet)


@pytest.mark.parametrize("name", ["stream_gen", "laminar"])
@pytest.mark.parametrize("seed", range(3))
def test_multi_turn_tool_bit_identity(name, seed):
    """Env-wait transitions and streamed mini-batches across random seeds."""
    reference = run_system("process", name, seed=seed, task="tool", iters=2)
    fleet = run_system("fleet", name, seed=seed, task="tool", iters=2)
    assert_results_identical(reference, fleet)


@pytest.mark.parametrize("kind", [FailureKind.ROLLOUT_MACHINE,
                                  FailureKind.RELAY,
                                  FailureKind.TRAINER])
def test_failures_mid_window_bit_identity(kind):
    """Machine/relay/trainer failures: retire + respawn lands identically."""
    failure = FailureEvent(time=15.0, kind=kind, target=0)
    reference = run_system("process", "laminar", gpus=64, scale=1 / 16,
                           iters=4, failure=failure)
    fleet = run_system("fleet", "laminar", gpus=64, scale=1 / 16,
                       iters=4, failure=failure)
    assert_results_identical(reference, fleet)
    assert reference.iterations  # training survived the failure
    if kind == FailureKind.ROLLOUT_MACHINE:
        # Only machine failovers produce recovery records; make sure the
        # retire + respawn path actually ran.
        assert reference.extras.get("failures_handled", 0.0) >= 1.0


def test_repack_pulls_bit_identity():
    """Laminar with repack enabled at a scale where pulls actually fire."""
    reference = run_system("process", "laminar", gpus=64, scale=1 / 8, iters=4)
    fleet = run_system("fleet", "laminar", gpus=64, scale=1 / 8, iters=4)
    assert_results_identical(reference, fleet)


# --------------------------------------------------------------------------- adversarial fuzz
@pytest.mark.parametrize("name", ALL_SYSTEMS)
def test_persistent_straggler_config_bit_identity(name):
    """A config-declared straggler slot degrades every system identically."""
    reference = run_system("process", name, straggler_factors=((1, 2.5),))
    fleet = run_system("fleet", name, straggler_factors=((1, 2.5),))
    assert_results_identical(reference, fleet)
    # The slowdown actually bit: the degraded run is no faster than nominal.
    nominal = run_system("process", name)
    assert reference.wall_clock >= nominal.wall_clock


@pytest.mark.parametrize("seed", range(2))
def test_transient_straggler_wave_bit_identity(seed):
    """Injected slow-down windows (set + paired clear) land identically."""
    plan = FailurePlan.stragglers(seed, num_machines=4, window=(5.0, 25.0),
                                  count=2, factor_range=(1.5, 3.0),
                                  duration_range=(5.0, 15.0))
    reference = run_system("process", "laminar", gpus=64, scale=1 / 16,
                           iters=4, plan=plan)
    fleet = run_system("fleet", "laminar", gpus=64, scale=1 / 16,
                       iters=4, plan=plan)
    assert_results_identical(reference, fleet)
    assert reference.extras.get("stragglers_handled", 0.0) >= 1.0


def test_correlated_rack_wave_bit_identity():
    """Simultaneous machine losses (one rack) recover identically."""
    plan = FailurePlan.rack_wave(15.0, rack=0, rack_size=2)
    reference = run_system("process", "laminar", gpus=64, scale=1 / 16,
                           iters=4, plan=plan)
    fleet = run_system("fleet", "laminar", gpus=64, scale=1 / 16,
                       iters=4, plan=plan)
    assert_results_identical(reference, fleet)
    assert reference.extras.get("failures_handled", 0.0) >= 2.0


def test_preemption_wave_bit_identity():
    """Spot warning drains gracefully before the reclaim lands."""
    plan = FailurePlan.preemption_wave(10.0, [0, 2], warning_lead=8.0)
    reference = run_system("process", "laminar", gpus=64, scale=1 / 16,
                           iters=4, plan=plan)
    fleet = run_system("fleet", "laminar", gpus=64, scale=1 / 16,
                       iters=4, plan=plan)
    assert_results_identical(reference, fleet)
    assert reference.extras.get("preemption_warnings", 0.0) == 2.0
    assert reference.extras.get("spot_preemptions", 0.0) == 2.0


@pytest.mark.parametrize("seed", range(2))
def test_network_degradation_bit_identity(seed):
    """Bandwidth dips + link flaps on the weight-sync path stay identical."""
    plan = FailurePlan.network_degradation(seed, window=(5.0, 30.0), dips=2,
                                           flap_machines=[1],
                                           flap_duration_range=(3.0, 8.0))
    reference = run_system("process", "laminar", gpus=64, scale=1 / 16,
                           iters=4, plan=plan)
    fleet = run_system("fleet", "laminar", gpus=64, scale=1 / 16,
                       iters=4, plan=plan)
    assert_results_identical(reference, fleet)
    # At least one degradation event landed inside the simulated run (later
    # ones may fall past the final iteration, which is fine).
    assert reference.extras.get("network_events", 0.0) >= 1.0


@pytest.mark.parametrize("seed", range(3))
def test_chaos_storm_bit_identity(seed):
    """The composed storm — wave + preemption + straggler + network — is the
    union of every adversarial pathway; training must survive it and both
    stepping modes must agree exactly."""
    plan = FailurePlan.chaos(seed, num_machines=4, horizon=60.0)
    reference = run_system("process", "laminar", gpus=64, scale=1 / 16,
                           iters=4, plan=plan)
    fleet = run_system("fleet", "laminar", gpus=64, scale=1 / 16,
                       iters=4, plan=plan)
    assert_results_identical(reference, fleet)
    assert reference.iterations  # training survived the storm


# --------------------------------------------------------------------------- pop_due_batch
def test_pop_due_batch_ties_supersession_and_disarm():
    """Exact-tie grouping over a heap laced with superseded/disarmed entries."""
    import math

    from repro.runtime.fleet import FleetState

    state = FleetState()
    for replica_id in range(6):
        state.add_replica(replica_id)
    at = 10.0 + 1e-3  # an inexact float: ties must match bit-for-bit anyway

    state.schedule(0, at)          # stamp 0
    state.schedule(1, at)          # stamp 1
    state.schedule(2, at)          # stamp 2 — superseded below
    state.schedule(3, at)          # stamp 3 — disarmed below
    state.schedule(4, math.nextafter(at, math.inf))  # one ulp later: not a tie
    state.schedule(2, at)          # stamp 5: member 2 re-armed, moves to FIFO back
    state.clear(3)                 # member 3 disarmed: stale heap entry remains

    # Nothing due before the tie instant.
    assert state.pop_due_batch(math.nextafter(at, 0.0)) == []

    # The tie group pops in (wake, stamp) order: 0, 1, then 2's re-arm stamp.
    # Member 3's entry is skipped lazily; member 4 (one ulp later) stays armed.
    assert state.pop_due_batch(at + 1.0) == [0, 1, 2]
    assert all(math.isinf(state.wake[i]) for i in (0, 1, 2, 3))
    assert not math.isinf(state.wake[4])

    # The next batch is the one-ulp-later singleton.
    assert state.pop_due_batch(at + 1.0) == [4]
    assert state.pop_due_batch(at + 1.0) == []


def test_pop_due_batch_matches_repeated_pop_due():
    """Batch pops replay the exact (time, FIFO) sequence of single pops."""
    import math

    from repro.runtime.fleet import FleetState

    rng = np.random.default_rng(42)
    single, batch = FleetState(), FleetState()
    for replica_id in range(12):
        single.add_replica(replica_id)
        batch.add_replica(replica_id)
    times = [1.0, 1.0 + 2 ** -40, 2.5, 7.0 / 3.0]
    for _ in range(60):
        index = int(rng.integers(0, 12))
        if rng.random() < 0.15:
            single.clear(index)
            batch.clear(index)
        else:
            at = float(rng.choice(times))
            single.schedule(index, at)
            batch.schedule(index, at)
    now = 10.0
    singles = []
    while True:
        index = single.pop_due(now)
        if index is None:
            break
        singles.append(index)
    batches = []
    while True:
        group = batch.pop_due_batch(now)
        if not group:
            break
        # Every member of one batch shares one exact wake instant by contract.
        batches.extend(group)
    assert batches == singles
    assert np.array_equal(single.wake[:12], batch.wake[:12])


# --------------------------------------------------------------------------- grouped servicing
@pytest.fixture
def grouped_probe(monkeypatch):
    """Instrument FleetStepper._service_group: count fused vs fallback paths."""
    import repro.runtime.fleet as fleet_mod

    record = {"groups": 0, "fused": 0, "fallback": 0, "max_group": 0}
    original_group = fleet_mod.FleetStepper._service_group
    original_view = fleet_mod.ReplicaBatchView
    views = []

    class RecordingView(original_view):
        def __init__(self, replicas, fuse=True):
            super().__init__(replicas, fuse=fuse)
            views.append(self.all_fused)

    def probed_group(self, replica_ids):
        record["groups"] += 1
        record["max_group"] = max(record["max_group"], len(replica_ids))
        before = len(views)
        original_group(self, replica_ids)
        created = views[before:]
        if created and created[0]:
            record["fused"] += 1
        else:
            record["fallback"] += 1

    monkeypatch.setattr(fleet_mod, "ReplicaBatchView", RecordingView)
    monkeypatch.setattr(fleet_mod.FleetStepper, "_service_group", probed_group)
    return record


def tied_workload(seed: int, count: int, start_id: int):
    """A workload whose *content* depends only on ``seed``.

    Replicas loaded from the same seed (with disjoint id ranges) evolve
    through identical float chains, so their wake-ups tie at the exact same
    float instants — the grouped-kernel path's precondition.
    """
    rng = np.random.default_rng(seed)
    states = []
    for i in range(count):
        num_turns = int(rng.integers(1, 4))
        segments = [int(rng.integers(5, 120)) for _ in range(num_turns)]
        env_latencies = [float(rng.uniform(0.5, 10.0)) for _ in range(num_turns - 1)]
        env_latencies.append(0.0)
        prompt = Prompt(prompt_id=start_id + i, group_id=0,
                        prompt_tokens=int(rng.integers(16, 64)))
        trajectory = Trajectory(traj_id=start_id + i, prompt=prompt,
                                target_tokens=sum(segments))
        states.append(SequenceState(
            trajectory=trajectory,
            schedule=TurnSchedule(segments=segments, env_latencies=env_latencies),
        ))
    return states


class _ToyFleet(ReplicaFleet):
    """Minimal continuous fleet: fixed members, recorded completions, and a
    bounded per-member refill budget so drained members park and the run
    terminates on its own."""

    def __init__(self, env, replicas, refill_batches=0, refill_count=4):
        super().__init__(env)
        self._by_id = {r.replica_id: r for r in replicas}
        self._refills_left = {r.replica_id: refill_batches for r in replicas}
        self._refill_count = refill_count
        self.events = []

    def replica(self, replica_id):
        return self._by_id.get(replica_id)

    def refill(self, replica):
        left = self._refills_left[replica.replica_id]
        if left <= 0:
            return
        self._refills_left[replica.replica_id] = left - 1
        # Same content seed for every member: refilled cohorts re-tie.
        replica.add_sequences(tied_workload(
            7000 + left, self._refill_count,
            100_000 * (replica.replica_id + 1) + 100 * left,
        ))

    def on_advance(self, replica, completed):
        for trajectory in completed:
            self.events.append((
                self.env.now, replica.replica_id, trajectory.traj_id,
                trajectory.finish_time, trajectory.generated_tokens,
                trajectory.turns_done,
            ))


def run_toy_fleet(mode: str, workload_seeds, refill_batches=0, blocks=512,
                  slowdowns=()):
    """Drive a synthetic continuous fleet to quiescence under one mode."""
    with stepping(mode):
        env = Environment()
        replicas = []
        for replica_id, seed in enumerate(workload_seeds):
            replica = ReplicaGenerationState(
                replica_id=replica_id,
                decode_model=DECODE_MODEL,
                kvcache_config=KVCacheConfig(total_blocks=blocks),
                max_concurrency=16,
            )
            replica.add_sequences(tied_workload(seed, 8, 1000 * (replica_id + 1)))
            replicas.append(replica)
        for replica_id, factor in slowdowns:
            replicas[replica_id].set_slowdown(decode=factor)
        fleet = _ToyFleet(env, replicas, refill_batches=refill_batches)
        for replica in replicas:
            fleet.spawn(replica.replica_id)
        env.run()
        return {
            "events": fleet.events,
            "clocks": [r.clock for r in replicas],
            "stats": [r.stats for r in replicas],
            "kv": [(r.kvcache.used_blocks, r.kvcache.peak_blocks)
                   for r in replicas],
        }


@pytest.mark.parametrize("seed", range(3))
def test_grouped_service_exact_ties_bit_identity(grouped_probe, seed):
    """Identical members wake at exact float ties: whole cohorts must be
    serviced through the grouped kernel and still match process mode."""
    reference = run_toy_fleet("process", [seed] * 4, refill_batches=2)
    fleet = run_toy_fleet("fleet", [seed] * 4, refill_batches=2)
    assert fleet == reference
    assert grouped_probe["fused"] >= 1  # the fused cohort path actually ran
    assert grouped_probe["max_group"] >= 2


@pytest.mark.parametrize("seed", range(2))
def test_grouped_mixed_ties_and_singles_bit_identity(grouped_probe, seed):
    """Tied twins interleaved with unique members: groups and singles mix."""
    reference = run_toy_fleet("process", [seed, seed, seed + 50, seed + 60],
                              refill_batches=1)
    fleet = run_toy_fleet("fleet", [seed, seed, seed + 50, seed + 60],
                          refill_batches=1)
    assert fleet == reference
    assert grouped_probe["fused"] >= 1


@pytest.mark.parametrize("seed", range(2))
def test_grouped_fallback_queued_lanes_bit_identity(grouped_probe, seed):
    """A KV pool too small for the cohort leaves waiting queues on every
    member: the view refuses to fuse and the group degroups, identically."""
    reference = run_toy_fleet("process", [seed] * 4, blocks=64)
    fleet = run_toy_fleet("fleet", [seed] * 4, blocks=64)
    assert fleet == reference
    assert grouped_probe["groups"] >= 1
    assert grouped_probe["fallback"] >= 1  # degrouping actually happened


def test_grouped_fallback_slowdown_bit_identity(grouped_probe):
    """Straggling members are unfusable; a tied cohort of them degroups."""
    reference = run_toy_fleet("process", [3] * 4,
                              slowdowns=((0, 2.0), (1, 2.0), (2, 2.0), (3, 2.0)))
    fleet = run_toy_fleet("fleet", [3] * 4,
                          slowdowns=((0, 2.0), (1, 2.0), (2, 2.0), (3, 2.0)))
    assert fleet == reference
    assert grouped_probe["groups"] >= 1
    assert grouped_probe["fallback"] >= 1


def test_grouped_refill_waits_bit_identity(grouped_probe):
    """Members that drain early park on the refill signal mid-run; later
    refills revive them and the revived cohort re-ties."""
    reference = run_toy_fleet("process", [9] * 3, refill_batches=3)
    fleet = run_toy_fleet("fleet", [9] * 3, refill_batches=3)
    assert fleet == reference
    assert grouped_probe["fused"] >= 1

"""Tests for the discrete-event simulation engine and resources."""

import pytest

from repro.sim import (
    Container,
    Environment,
    Interrupt,
    Resource,
    SimulationError,
    Store,
)


def test_timeout_ordering_and_clock():
    env = Environment()
    fired = []

    def proc(delay, tag):
        yield env.timeout(delay)
        fired.append((tag, env.now))

    env.process(proc(2.0, "b"))
    env.process(proc(1.0, "a"))
    env.run()
    assert fired == [("a", 1.0), ("b", 2.0)]


def test_fifo_tie_break_at_same_time():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in "abc":
        env.process(proc(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_return_value_and_waiting_on_process():
    env = Environment()

    def child():
        yield env.timeout(3.0)
        return 42

    def parent():
        value = yield env.process(child())
        return value + 1

    result = env.run(env.process(parent()))
    assert result == 43
    assert env.now == 3.0


def test_run_until_time_stops_clock():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(1.0)

    env.process(proc())
    env.run(until=5.5)
    assert env.now == 5.5


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_interrupt_delivers_cause():
    env = Environment()
    seen = {}

    def victim():
        try:
            yield env.timeout(10.0)
        except Interrupt as interrupt:
            seen["cause"] = interrupt.cause
            seen["time"] = env.now

    def attacker(process):
        yield env.timeout(2.0)
        process.interrupt(cause="repack")

    victim_proc = env.process(victim())
    env.process(attacker(victim_proc))
    env.run()
    assert seen == {"cause": "repack", "time": 2.0}


def test_interrupt_while_waiting_on_anyof_detaches_cleanly():
    """An interrupted process waiting on an AnyOf must not be spuriously
    resumed when the condition (or one of its sub-events) later fires."""
    env = Environment()
    log = []

    def victim():
        t1 = env.timeout(10.0, value="slow")
        t2 = env.timeout(20.0, value="slower")
        try:
            yield (t1 | t2)
            log.append(("anyof", env.now))
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, env.now))
        # Keep living past the stale events' fire times.
        yield env.timeout(50.0)
        log.append(("done", env.now))

    def attacker(process):
        yield env.timeout(3.0)
        process.interrupt(cause="repack")

    proc = env.process(victim())
    env.process(attacker(proc))
    env.run()
    # Exactly one wake-up from the interrupt, none from the stale timeouts.
    assert log == [("interrupted", "repack", 3.0), ("done", 53.0)]


def test_interrupt_before_first_resume_lands_on_first_yield():
    """Interrupting a process whose Initialize event has not fired yet is
    delivered at the process's first yield instead of crashing."""
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(10.0)
            log.append("slept")
        except Interrupt:
            log.append(("early-interrupt", env.now))

    proc = env.process(victim())
    proc.interrupt()  # same timestamp, before Initialize has run
    env.run()
    assert log == [("early-interrupt", 0.0)]


def test_failed_event_crashes_run_unless_defused():
    env = Environment()

    class Boom(RuntimeError):
        pass

    def trigger():
        event = env.event()
        yield env.timeout(1.0)
        event.fail(Boom("unhandled"))

    env.process(trigger())
    with pytest.raises(Boom):
        env.run()

    # Defusing marks the failure as handled: the run completes.
    env2 = Environment()

    def trigger_defused():
        event = env2.event()
        yield env2.timeout(1.0)
        event.fail(Boom("handled"))
        event.defused()

    env2.process(trigger_defused())
    env2.run()
    assert env2.now == 1.0


def test_process_catching_failed_event_defuses_it():
    """A process that catches the exception from a failed event it waited on
    counts as handling it — the run must not re-raise."""
    env = Environment()
    caught = []

    def failer(event):
        yield env.timeout(2.0)
        event.fail(ValueError("boom"))

    def waiter(event):
        try:
            yield event
        except ValueError as exc:
            caught.append((str(exc), env.now))
        yield env.timeout(1.0)

    event = env.event()
    env.process(failer(event))
    env.process(waiter(event))
    env.run()
    assert caught == [("boom", 2.0)]
    assert env.now == 3.0


def test_run_until_time_vs_until_event_semantics():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(1.0)

    def finisher():
        yield env.timeout(3.5)
        return "finished"

    env.process(ticker())
    proc = env.process(finisher())
    # until=event: stops exactly when the event fires and returns its value.
    assert env.run(until=proc) == "finished"
    assert env.now == 3.5
    # until=time: advances the clock to exactly that time, firing nothing later.
    env.run(until=7.25)
    assert env.now == 7.25
    # until in the past is illegal.
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_run_until_event_that_never_fires_raises():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    env.process(quick())
    never = env.event()
    with pytest.raises(SimulationError):
        env.run(until=never)


def test_same_time_fifo_is_deterministic_across_event_kinds():
    """Events scheduled for the same instant fire in scheduling order, so a
    run is fully reproducible; interrupts (priority 0) cut ahead."""
    env = Environment()
    order = []

    def sleeper(tag, delay):
        yield env.timeout(delay)
        order.append(tag)

    def succeeder(event):
        yield env.timeout(1.0)
        event.succeed()

    def waiter(event, tag):
        yield event
        order.append(tag)

    gate = env.event()
    env.process(sleeper("t-first", 1.0))
    env.process(waiter(gate, "event-waiter"))
    env.process(succeeder(gate))
    env.process(sleeper("t-last", 1.0))
    env.run()
    # The gate fires inside succeeder's resume at t=1, after both timeouts
    # were already scheduled at t=0 — FIFO order of scheduling, every run.
    assert order == ["t-first", "t-last", "event-waiter"]


def test_interrupted_driver_keeps_deterministic_order_after_reschedule():
    env = Environment()
    order = []

    def driver():
        while True:
            try:
                yield env.timeout(5.0)
                order.append(("tick", env.now))
                return
            except Interrupt:
                order.append(("recompute", env.now))

    def interrupter(process):
        yield env.timeout(2.0)
        process.interrupt()
        yield env.timeout(2.0)
        process.interrupt()

    proc = env.process(driver())
    env.process(interrupter(proc))
    env.run()
    assert order == [("recompute", 2.0), ("recompute", 4.0), ("tick", 9.0)]


def test_event_and_or_composition():
    env = Environment()
    results = {}

    def proc():
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        first = yield (t1 | t2)
        results["any_time"] = env.now
        results["any_values"] = list(first.values())
        both = yield (t1 & t2)
        results["all_time"] = env.now
        results["n_done"] = len(both)

    env.process(proc())
    env.run()
    assert results["any_time"] == 1.0
    assert results["any_values"] == ["fast"]
    assert results["all_time"] == 5.0
    assert results["n_done"] == 2


def test_store_put_get_and_filter():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for item in ("x", "y", "z"):
            yield store.put(item)
            yield env.timeout(1.0)

    def consumer():
        item = yield store.get(lambda v: v == "y")
        got.append((item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [("y", 1.0)]
    assert store.items == ["x", "z"]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put(1)
        start = env.now
        yield store.put(2)  # blocks until the consumer removes item 1
        times.append((start, env.now))

    def consumer():
        yield env.timeout(4.0)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [(0.0, 4.0)]


def test_resource_serializes_holders():
    env = Environment()
    resource = Resource(env, capacity=1)
    spans = []

    def worker(tag):
        request = resource.request()
        yield request
        start = env.now
        yield env.timeout(2.0)
        resource.release(request)
        spans.append((tag, start, env.now))

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 4.0)]


def test_container_get_blocks_until_level():
    env = Environment()
    container = Container(env, capacity=10, init=0)
    events = []

    def filler():
        yield env.timeout(3.0)
        yield container.put(5)

    def drainer():
        yield container.get(4)
        events.append(env.now)

    env.process(filler())
    env.process(drainer())
    env.run()
    assert events == [3.0]
    assert container.level == 1

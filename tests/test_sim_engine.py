"""Tests for the discrete-event simulation engine and resources."""

import pytest

from repro.sim import (
    Container,
    Environment,
    Interrupt,
    Resource,
    SimulationError,
    Store,
)


def test_timeout_ordering_and_clock():
    env = Environment()
    fired = []

    def proc(delay, tag):
        yield env.timeout(delay)
        fired.append((tag, env.now))

    env.process(proc(2.0, "b"))
    env.process(proc(1.0, "a"))
    env.run()
    assert fired == [("a", 1.0), ("b", 2.0)]


def test_fifo_tie_break_at_same_time():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in "abc":
        env.process(proc(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_return_value_and_waiting_on_process():
    env = Environment()

    def child():
        yield env.timeout(3.0)
        return 42

    def parent():
        value = yield env.process(child())
        return value + 1

    result = env.run(env.process(parent()))
    assert result == 43
    assert env.now == 3.0


def test_run_until_time_stops_clock():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(1.0)

    env.process(proc())
    env.run(until=5.5)
    assert env.now == 5.5


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_interrupt_delivers_cause():
    env = Environment()
    seen = {}

    def victim():
        try:
            yield env.timeout(10.0)
        except Interrupt as interrupt:
            seen["cause"] = interrupt.cause
            seen["time"] = env.now

    def attacker(process):
        yield env.timeout(2.0)
        process.interrupt(cause="repack")

    victim_proc = env.process(victim())
    env.process(attacker(victim_proc))
    env.run()
    assert seen == {"cause": "repack", "time": 2.0}


def test_event_and_or_composition():
    env = Environment()
    results = {}

    def proc():
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        first = yield (t1 | t2)
        results["any_time"] = env.now
        results["any_values"] = list(first.values())
        both = yield (t1 & t2)
        results["all_time"] = env.now
        results["n_done"] = len(both)

    env.process(proc())
    env.run()
    assert results["any_time"] == 1.0
    assert results["any_values"] == ["fast"]
    assert results["all_time"] == 5.0
    assert results["n_done"] == 2


def test_store_put_get_and_filter():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for item in ("x", "y", "z"):
            yield store.put(item)
            yield env.timeout(1.0)

    def consumer():
        item = yield store.get(lambda v: v == "y")
        got.append((item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [("y", 1.0)]
    assert store.items == ["x", "z"]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put(1)
        start = env.now
        yield store.put(2)  # blocks until the consumer removes item 1
        times.append((start, env.now))

    def consumer():
        yield env.timeout(4.0)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [(0.0, 4.0)]


def test_resource_serializes_holders():
    env = Environment()
    resource = Resource(env, capacity=1)
    spans = []

    def worker(tag):
        request = resource.request()
        yield request
        start = env.now
        yield env.timeout(2.0)
        resource.release(request)
        spans.append((tag, start, env.now))

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 4.0)]


def test_container_get_blocks_until_level():
    env = Environment()
    container = Container(env, capacity=10, init=0)
    events = []

    def filler():
        yield env.timeout(3.0)
        yield container.put(5)

    def drainer():
        yield container.get(4)
        events.append(env.now)

    env.process(filler())
    env.process(drainer())
    env.run()
    assert events == [3.0]
    assert container.level == 1

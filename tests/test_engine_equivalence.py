"""Bit-identity harness: vectorized engine vs the retained scalar reference.

Two engines — :class:`repro.rollout.ReplicaGenerationState` (structure-of-
arrays) and :class:`repro.rollout.ScalarReplicaGenerationState` (the
pre-vectorization per-sequence loop) — are driven through identical event
sequences: seeded random multi-turn workloads with interleaved repack-style
pulls and re-adds, stalls, weight-version bumps, partial-rollout re-prefills
and tiny cache pools that force queueing and preemption storms.  Every
committed ``BENCH_*.json`` baseline rests on this equivalence: the vector
engine must be *bit-identical*, not approximately equal.
"""

import math

import numpy as np
import pytest

from repro.llm import QWEN_7B
from repro.rollout import (
    ReplicaGenerationState,
    RolloutReplicaConfig,
    ScalarReplicaGenerationState,
    SequenceState,
    TurnSchedule,
)
from repro.sim import KVCacheConfig
from repro.types import Prompt, Trajectory

DECODE_MODEL = RolloutReplicaConfig(QWEN_7B, tensor_parallel=1).decode_model()


def make_engines(blocks=512, max_concurrency=64):
    kwargs = dict(
        replica_id=0,
        decode_model=DECODE_MODEL,
        kvcache_config=KVCacheConfig(total_blocks=blocks),
        max_concurrency=max_concurrency,
    )
    return ScalarReplicaGenerationState(**kwargs), ReplicaGenerationState(**kwargs)


def make_states(seed: int, count: int, start_id: int, multi_turn=True):
    """Deterministic workload fabrication; call twice for mirrored copies."""
    rng = np.random.default_rng(seed)
    states = []
    for i in range(count):
        num_turns = int(rng.integers(1, 4)) if multi_turn else 1
        segments = [int(rng.integers(5, 120)) for _ in range(num_turns)]
        env_latencies = [float(rng.uniform(0.5, 10.0)) for _ in range(num_turns - 1)]
        env_latencies.append(0.0)
        prompt = Prompt(
            prompt_id=start_id + i, group_id=0,
            prompt_tokens=int(rng.integers(16, 256)),
        )
        trajectory = Trajectory(
            traj_id=start_id + i, prompt=prompt, target_tokens=sum(segments)
        )
        states.append(
            SequenceState(
                trajectory=trajectory,
                schedule=TurnSchedule(segments=segments, env_latencies=env_latencies),
            )
        )
    return states


def assert_engines_identical(scalar, vector):
    assert scalar.clock == vector.clock
    assert scalar._time_carry == vector._time_carry
    assert scalar.stats == vector.stats
    assert scalar.num_sequences == vector.num_sequences
    assert scalar.num_decoding == vector.num_decoding
    assert scalar.num_queued == vector.num_queued
    assert scalar.num_env_waiting == vector.num_env_waiting
    assert scalar.kvcache.used_blocks == vector.kvcache.used_blocks
    assert scalar.kvcache.peak_blocks == vector.kvcache.peak_blocks
    assert scalar.kvcache.num_sequences == vector.kvcache.num_sequences
    s_states = {s.seq_id: s for s in scalar.sequences()}
    v_states = {s.seq_id: s for s in vector.sequences()}
    assert s_states.keys() == v_states.keys()
    for seq_id, s in s_states.items():
        v = v_states[seq_id]
        assert s.status == v.status, seq_id
        assert s.turn_index == v.turn_index, seq_id
        assert s.tokens_done_in_turn == v.tokens_done_in_turn, seq_id
        assert s.env_return_time == v.env_return_time, seq_id
        assert s.needs_reprefill == v.needs_reprefill, seq_id
        assert s.trajectory.generated_tokens == v.trajectory.generated_tokens, seq_id
        assert s.trajectory.versions_used == v.trajectory.versions_used, seq_id
        assert s.trajectory.turns_done == v.trajectory.turns_done, seq_id
        if s.status in ("decoding", "env_wait"):
            assert (
                scalar.kvcache.sequence_tokens(seq_id)
                == vector.kvcache.sequence_tokens(seq_id)
            ), seq_id


def assert_completions_identical(scalar_done, vector_done):
    assert [t.traj_id for t in scalar_done] == [t.traj_id for t in vector_done]
    for s, v in zip(scalar_done, vector_done):
        assert s.finish_time == v.finish_time
        assert s.generated_tokens == v.generated_tokens
        assert s.turns_done == v.turns_done
        assert s.versions_used == v.versions_used
        assert s.replica_id == v.replica_id


# --------------------------------------------------------------------------- fuzz
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 7])
def test_fuzzed_random_workload_is_bit_identical(seed):
    """Random multi-turn workloads + pulls + stalls: step-for-step identity."""
    scalar, vector = make_engines(blocks=384, max_concurrency=48)
    op_rng = np.random.default_rng(1000 + seed)
    next_id = 0
    parked_scalar, parked_vector = [], []  # repack-pulled, waiting to re-add
    version = 0

    def add_batch(count):
        nonlocal next_id
        scalar.add_sequences(make_states(seed * 971 + next_id, count, next_id))
        vector.add_sequences(make_states(seed * 971 + next_id, count, next_id))
        next_id += count

    add_batch(int(op_rng.integers(8, 20)))
    for _ in range(240):
        op = op_rng.random()
        if op < 0.62:  # drive to (or through) the next internal event
            delta_s, delta_v = scalar.next_event_in(), vector.next_event_in()
            assert delta_s == delta_v
            if delta_s is None:
                if not scalar.num_sequences:
                    add_batch(int(op_rng.integers(4, 12)))
                continue
            stretch = float(op_rng.uniform(0.3, 1.7))
            assert_completions_identical(
                scalar.advance(delta_s * stretch), vector.advance(delta_v * stretch)
            )
        elif op < 0.72:  # arbitrary window, unaligned with events
            window = float(op_rng.uniform(0.01, 30.0))
            assert_completions_identical(
                scalar.advance(window), vector.advance(window)
            )
        elif op < 0.80:  # repack-style pull of a random subset
            ids = [s.seq_id for s in scalar.sequences()]
            if ids:
                take = op_rng.choice(ids, size=min(len(ids), 5), replace=False)
                pulled_s = scalar.remove_sequences([int(i) for i in take])
                pulled_v = vector.remove_sequences([int(i) for i in take])
                assert [s.seq_id for s in pulled_s] == [s.seq_id for s in pulled_v]
                for s, v in zip(pulled_s, pulled_v):
                    assert s.trajectory.generated_tokens == v.trajectory.generated_tokens
                    assert s.tokens_done_in_turn == v.tokens_done_in_turn
                    s.needs_reprefill = v.needs_reprefill = True
                parked_scalar.extend(pulled_s)
                parked_vector.extend(pulled_v)
        elif op < 0.86:  # migrated work returns (same replica stands in for a peer)
            if parked_scalar:
                scalar.add_sequences(parked_scalar)
                vector.add_sequences(parked_vector)
                parked_scalar, parked_vector = [], []
        elif op < 0.92:  # weight-pull / repack-overhead stall
            duration = float(op_rng.uniform(0.1, 5.0))
            busy = bool(op_rng.random() < 0.5)
            scalar.inject_stall(duration, busy=busy)
            vector.inject_stall(duration, busy=busy)
        elif op < 0.96:  # trainer update: version bump (+ sometimes re-prefill storm)
            version += 1
            scalar.set_weight_version(version)
            vector.set_weight_version(version)
            if op_rng.random() < 0.5:
                assert scalar.reprefill_all_inflight() == vector.reprefill_all_inflight()
        else:  # fresh prompts land
            add_batch(int(op_rng.integers(2, 10)))
        assert_engines_identical(scalar, vector)

    # Drain everything that is still in flight and compare the full epilogue.
    if parked_scalar:
        scalar.add_sequences(parked_scalar)
        vector.add_sequences(parked_vector)
    duration_s, done_s = scalar.run_to_completion()
    duration_v, done_v = vector.run_to_completion()
    assert duration_s == duration_v
    assert_completions_identical(
        sorted(done_s, key=lambda t: t.traj_id),
        sorted(done_v, key=lambda t: t.traj_id),
    )
    assert_engines_identical(scalar, vector)


def test_preemption_storm_is_bit_identical():
    """A cache far too small for the workload: admission/preempt churn."""
    def long_states():
        states = []
        for i in range(8):
            prompt = Prompt(prompt_id=i, group_id=0, prompt_tokens=48)
            trajectory = Trajectory(traj_id=i, prompt=prompt, target_tokens=400 + 60 * i)
            states.append(SequenceState(
                trajectory=trajectory,
                schedule=TurnSchedule.single_turn(400 + 60 * i),
            ))
        return states

    scalar, vector = make_engines(blocks=64, max_concurrency=32)
    scalar.add_sequences(long_states())
    vector.add_sequences(long_states())
    while scalar.num_sequences or vector.num_sequences:
        delta_s, delta_v = scalar.next_event_in(), vector.next_event_in()
        assert delta_s == delta_v
        if delta_s is None:
            break
        assert_completions_identical(scalar.advance(delta_s), vector.advance(delta_v))
        assert_engines_identical(scalar, vector)
    assert scalar.stats.preemptions > 0  # the scenario actually exercised churn


# --------------------------------------------------------------------------- degenerate windows
def degenerate_replica(engine_cls):
    replica = engine_cls(
        replica_id=0,
        decode_model=DECODE_MODEL,
        kvcache_config=KVCacheConfig(total_blocks=512),
        max_concurrency=8,
    )
    # A healthy sequence plus one whose current segment is already exhausted
    # (segment_remaining == 0, e.g. a corrupt migration): min_seg collapses to
    # zero, so every advance window is degenerate and only the epsilon-slip
    # fallback makes progress.
    healthy = make_states(11, 1, 0, multi_turn=False)
    prompt = Prompt(prompt_id=1, group_id=0, prompt_tokens=32)
    trajectory = Trajectory(traj_id=1, prompt=prompt, target_tokens=40)
    stuck = SequenceState(
        trajectory=trajectory,
        schedule=TurnSchedule.single_turn(40),
        tokens_done_in_turn=40,
    )
    replica.add_sequences(healthy + [stuck])
    return replica


@pytest.mark.parametrize("engine_cls",
                         [ReplicaGenerationState, ScalarReplicaGenerationState])
def test_degenerate_window_charges_stats_bucket(engine_cls):
    """The epsilon-slip fallback must not leak simulated time (regression).

    Before the fix, each degenerate iteration advanced ``clock`` by ``_EPS``
    without charging any stats bucket, so busy + idle + env-blocked drifted
    below the clock.
    """
    replica = degenerate_replica(engine_cls)
    target = 5e-9
    replica.advance(target)
    assert replica.clock >= target - 1.1e-9  # advance stops within _EPS of target
    assert replica.clock > 0.0  # the fallback did make progress
    stats = replica.stats
    accounted = stats.decode_busy_time + stats.idle_time + stats.env_blocked_time
    assert accounted == pytest.approx(replica.clock, abs=1e-15)


def test_degenerate_window_engines_agree():
    scalar = degenerate_replica(ScalarReplicaGenerationState)
    vector = degenerate_replica(ReplicaGenerationState)
    scalar.advance(5e-9)
    vector.advance(5e-9)
    assert_engines_identical(scalar, vector)


# --------------------------------------------------------------------------- KVCache batch API
def test_kvcache_batch_ops_match_scalar_loop():
    from repro.sim import KVCache

    rng = np.random.default_rng(3)
    a = KVCache(KVCacheConfig(total_blocks=4096))
    b = KVCache(KVCacheConfig(total_blocks=4096))
    live = []
    for seq_id in range(24):
        tokens = int(rng.integers(1, 300))
        if a.can_allocate(tokens):
            a.allocate(seq_id, tokens)
            b.allocate(seq_id, tokens)
            live.append(seq_id)
    for _ in range(40):
        grow = rng.integers(0, 48, size=len(live)).astype(np.int64)
        for seq_id, count in zip(live, grow):
            try:
                a.append_tokens(seq_id, int(count))
            except Exception:
                pytest.skip("workload overflowed the pool; resize the test")
        b.append_tokens_many(live, grow)
        assert a.used_blocks == b.used_blocks
        assert a.peak_blocks == b.peak_blocks
        for seq_id in live:
            assert a.sequence_tokens(seq_id) == b.sequence_tokens(seq_id)
        if len(live) > 4 and rng.random() < 0.3:
            victims, live = live[-2:], live[:-2]
            freed_a = sum(a.free(v) for v in victims)
            freed_b = b.free_many(victims)
            assert freed_a == freed_b


def test_decode_step_time_many_matches_scalar():
    """The vectorized roofline prices every lane bit-identically."""
    rng = np.random.default_rng(7)
    batches = rng.integers(0, 64, size=256).astype(np.int64)
    contexts = rng.integers(0, 8192, size=256).astype(np.int64)
    contexts[0] = 0  # exercise the max(1, ctx) clamp
    batches[1] = 0   # and the empty-batch zero
    many = DECODE_MODEL.decode_step_time_many(batches, np.maximum(1, contexts))
    for batch, context, fused in zip(batches, np.maximum(1, contexts), many):
        assert fused == DECODE_MODEL.decode_step_time(int(batch), int(context))


# --------------------------------------------------------------------------- batch views
def make_view_fleet(seed: int, lanes):
    """Mirrored scalar/vector replica lists; ``lanes`` gives per-lane slowdowns.

    A lane with a slowdown factor other than 1.0 is ineligible for fusion and
    must route through the per-replica fallback — the fused and fallback
    paths are exercised side by side.
    """
    scalars, vectors = [], []
    for replica_id, slowdown in enumerate(lanes):
        scalar, vector = make_engines(blocks=384, max_concurrency=24)
        scalar.add_sequences(make_states(seed * 131 + replica_id, 10,
                                         1000 * replica_id))
        vector.add_sequences(make_states(seed * 131 + replica_id, 10,
                                         1000 * replica_id))
        if slowdown != 1.0:
            scalar.set_slowdown(decode=slowdown)
            vector.set_slowdown(decode=slowdown)
        scalars.append(scalar)
        vectors.append(vector)
    return scalars, vectors


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_batch_view_fuzz_is_bit_identical(seed):
    """ReplicaBatchView vs the scalar per-replica router, round for round.

    Each round stacks a fresh view over both fleets, asks a random member
    subset for its next event, advances a random stretch of it through the
    grouped kernels, settles, and compares every engine field bit for bit.
    """
    from repro.rollout import ReplicaBatchView, ScalarReplicaBatchView

    lanes = (1.0, 1.0, 1.5, 1.0, 1.0)  # lane 2 straggles: permanent fallback
    scalars, vectors = make_view_fleet(seed, lanes)
    op_rng = np.random.default_rng(9000 + seed)
    next_id = 50_000

    for round_no in range(40):
        count = int(op_rng.integers(1, len(lanes) + 1))
        positions = sorted(
            int(i) for i in op_rng.choice(len(lanes), size=count, replace=False)
        )
        scalar_view = ScalarReplicaBatchView(scalars)
        vector_view = ReplicaBatchView(vectors)
        assert not scalar_view.lane_is_fused(2)
        assert not vector_view.lane_is_fused(2)
        scalar_deltas = scalar_view.next_event_in_many(positions)
        vector_deltas = vector_view.next_event_in_many(positions)
        assert scalar_deltas == vector_deltas
        stretch = float(op_rng.uniform(0.3, 1.7))
        advance_pos, dts = [], []
        for position, delta in zip(positions, scalar_deltas):
            if delta is not None:
                advance_pos.append(position)
                dts.append(delta * stretch)
        scalar_done = scalar_view.advance_many(advance_pos, dts)
        vector_done = vector_view.advance_many(advance_pos, dts)
        scalar_view.settle()
        vector_view.settle()
        for s_done, v_done in zip(scalar_done, vector_done):
            assert_completions_identical(s_done, v_done)
        for scalar, vector in zip(scalars, vectors):
            assert_engines_identical(scalar, vector)
        if round_no % 7 == 6:  # fresh work lands between rounds
            lane = int(op_rng.integers(0, len(lanes)))
            scalars[lane].add_sequences(make_states(seed + round_no, 3, next_id))
            vectors[lane].add_sequences(make_states(seed + round_no, 3, next_id))
            next_id += 3

    # Drain to empty through the views and compare the epilogue.
    while any(r.num_sequences for r in scalars):
        positions = [i for i, r in enumerate(scalars) if r.num_sequences]
        scalar_view = ScalarReplicaBatchView(scalars)
        vector_view = ReplicaBatchView(vectors)
        scalar_deltas = scalar_view.next_event_in_many(positions)
        vector_deltas = vector_view.next_event_in_many(positions)
        assert scalar_deltas == vector_deltas
        advance_pos = [p for p, d in zip(positions, scalar_deltas) if d is not None]
        dts = [d for d in scalar_deltas if d is not None]
        if not advance_pos:
            break
        scalar_done = scalar_view.advance_many(advance_pos, dts)
        vector_done = vector_view.advance_many(advance_pos, dts)
        scalar_view.settle()
        vector_view.settle()
        for s_done, v_done in zip(scalar_done, vector_done):
            assert_completions_identical(s_done, v_done)
    for scalar, vector in zip(scalars, vectors):
        assert_engines_identical(scalar, vector)


def test_batch_view_interleaves_with_direct_stepping():
    """A settled view hands the engines back intact: direct advance calls
    between view rounds continue the same float chains."""
    from repro.rollout import ReplicaBatchView, ScalarReplicaBatchView

    scalars, vectors = make_view_fleet(11, (1.0, 1.0, 1.0))
    for _ in range(10):
        scalar_view = ScalarReplicaBatchView(scalars)
        vector_view = ReplicaBatchView(vectors)
        positions = [0, 1, 2]
        scalar_deltas = scalar_view.next_event_in_many(positions)
        vector_deltas = vector_view.next_event_in_many(positions)
        assert scalar_deltas == vector_deltas
        dts = [d * 0.9 for d in scalar_deltas]
        scalar_view.advance_many(positions, dts)
        vector_view.advance_many(positions, dts)
        scalar_view.settle()
        vector_view.settle()
        # Direct per-replica stepping between view rounds.
        for scalar, vector in zip(scalars, vectors):
            delta_s, delta_v = scalar.next_event_in(), vector.next_event_in()
            assert delta_s == delta_v
            if delta_s is not None:
                assert_completions_identical(
                    scalar.advance(delta_s * 0.5), vector.advance(delta_v * 0.5)
                )
        for scalar, vector in zip(scalars, vectors):
            assert_engines_identical(scalar, vector)


def test_kvcache_rows_stay_valid_across_frees():
    from repro.sim import KVCache

    cache = KVCache(KVCacheConfig(total_blocks=64))
    rows = {}
    for seq_id in range(6):
        rows[seq_id] = cache.allocate(seq_id, 20)
    cache.free(2)
    cache.allocate(99, 10)  # recycles a freed row, never steals a live one
    for seq_id in (0, 1, 3, 4, 5):
        assert cache.row_of(seq_id) == rows[seq_id]
        assert int(cache.tokens_at(np.array([rows[seq_id]]))[0]) == 20

"""Tests for ``repro.obs.analysis``: critical-path attribution, trace
round-tripping, derived-metric extras and their compare/CLI surfaces.

The attribution math is pinned on hand-built recorders (exact expected
seconds), then cross-checked on real system traces: verl's barrier loop must
come out generation-bound with a non-trivial bubble fraction, while Laminar
(no generation spans — continuous generation is counter-tracked) must not
report a bubble fraction at all, and a faulted Laminar run must show its
recovery time in the span-family table.
"""

import json
import math

import pytest

from repro.bench.cli import main as bench_main
from repro.bench.compare import (
    VERDICT_REGRESSION,
    compare_runs,
    judge_derived,
)
from repro.bench.registry import (
    ScenarioConfig,
    register_scenario,
    unregister_scenario,
)
from repro.bench.runner import ScenarioResult, UnitResult
from repro.obs import (
    DERIVED_METRIC_KEYS,
    TraceRecorder,
    analyze_group,
    analyze_recorder,
    chrome_trace,
    derived_metrics,
    diff_analyses,
    load_chrome_trace,
    render_analysis,
    render_diff,
    use_tracer,
)
from repro.obs.analysis import OTHER_PHASE, PHASE_PRIORITY, SPAN_FAMILIES


@pytest.fixture
def analysis_scenario():
    scenario = register_scenario(ScenarioConfig(
        id="obs_analysis_scenario",
        description="test-only scenario for trace-analytics tests",
        kind="throughput",
        systems=("verl", "laminar"),
        model_size="7B",
        gpu_scales=(16,),
        batch_scale=0.125,
        iterations=2,
        warmup=0,
        timeout_s=300.0,
        tags=("test-only",),
    ))
    yield scenario
    unregister_scenario(scenario.id)


def _hand_built_recorder():
    """One iteration window [0, 8]: training [0, 2], sync [2, 3], generation
    [0, 8].  Priority attribution: training=2, weight_sync=1, generation=5."""
    recorder = TraceRecorder(group="unit")
    recorder.span("trainer", "iteration", 0.0, 8.0)
    recorder.span("trainer", "training", 0.0, 2.0)
    recorder.span("sync", "weight_sync", 2.0, 3.0)
    recorder.span("rollout", "generation", 0.0, 8.0)
    return recorder


# --------------------------------------------------------------------------- attribution math
def test_critical_path_attribution_is_exact_and_exhaustive():
    analysis = analyze_group(_hand_built_recorder(), "unit")
    assert analysis is not None
    assert len(analysis.iterations) == 1
    path = analysis.iterations[0]
    assert path.seconds["training"] == pytest.approx(2.0)
    assert path.seconds["weight_sync"] == pytest.approx(1.0)
    assert path.seconds["generation"] == pytest.approx(5.0)
    assert path.seconds["repack"] == 0.0
    assert sum(path.seconds.values()) == pytest.approx(path.duration)
    assert sum(path.shares.values()) == pytest.approx(1.0)
    assert path.bound == "generation"
    assert analysis.bound == "generation"
    assert sum(analysis.phase_shares.values()) == pytest.approx(1.0, abs=1e-12)


def test_uncovered_window_time_is_attributed_to_other():
    recorder = TraceRecorder(group="unit")
    recorder.span("trainer", "iteration", 0.0, 10.0)
    recorder.span("trainer", "training", 0.0, 4.0)
    analysis = analyze_group(recorder, "unit")
    path = analysis.iterations[0]
    assert path.seconds["training"] == pytest.approx(4.0)
    assert path.seconds[OTHER_PHASE] == pytest.approx(6.0)


def test_priority_gives_overlapped_time_to_the_trainer_side():
    recorder = TraceRecorder(group="unit")
    recorder.span("trainer", "iteration", 0.0, 4.0)
    recorder.span("trainer", "training", 0.0, 4.0)
    recorder.span("rollout", "generation", 0.0, 4.0)
    analysis = analyze_group(recorder, "unit")
    path = analysis.iterations[0]
    assert path.seconds["training"] == pytest.approx(4.0)
    assert path.seconds["generation"] == 0.0


def test_track_usage_busy_idle_overlap():
    analysis = analyze_group(_hand_built_recorder(), "unit")
    tracks = {t.track: t for t in analysis.tracks}
    assert tracks["sync"].busy_s == pytest.approx(1.0)
    assert tracks["sync"].idle_s == pytest.approx(7.0)
    # The sync span runs entirely while trainer + rollout are busy.
    assert tracks["sync"].overlap_s == pytest.approx(1.0)
    assert tracks["rollout"].utilization == pytest.approx(1.0)


def test_family_usage_unions_overlapping_spans():
    recorder = TraceRecorder(group="unit")
    recorder.span("replica-0", "generate", 0.0, 6.0)
    recorder.span("replica-1", "generate", 4.0, 10.0)
    analysis = analyze_group(recorder, "unit")
    family = next(f for f in analysis.families if f.name == "generate")
    assert family.count == 2
    assert family.total_s == pytest.approx(12.0)  # double-counts the overlap
    assert family.busy_s == pytest.approx(10.0)   # union does not
    assert family.window_share == pytest.approx(1.0)


def test_empty_group_analyzes_to_none():
    assert analyze_group(TraceRecorder(), "nope") is None
    assert analyze_recorder(TraceRecorder()).groups == []


# --------------------------------------------------------------------------- derived metrics
def test_derived_metrics_shape_and_bubble_gating():
    analysis = analyze_group(_hand_built_recorder(), "unit")
    derived = derived_metrics(analysis)
    assert set(derived) <= set(DERIVED_METRIC_KEYS)
    # generation covers the whole window -> zero bubble; sync union is 1s/8s.
    assert derived["gen_bubble_frac"] == pytest.approx(0.0)
    assert derived["sync_frac"] == pytest.approx(1.0 / 8.0)
    assert derived["critical_path_gen_share"] == pytest.approx(5.0 / 8.0)

    # Without generation-family spans the bubble fraction would be a
    # tautological 1.0, so it must be absent — the Laminar case.
    no_gen = TraceRecorder(group="unit")
    no_gen.span("trainer", "iteration", 0.0, 8.0)
    no_gen.span("trainer", "training", 0.0, 8.0)
    derived = derived_metrics(analyze_group(no_gen, "unit"))
    assert "gen_bubble_frac" not in derived
    assert derived["critical_path_train_share"] == pytest.approx(1.0)


# --------------------------------------------------------------------------- chrome-trace round-trip
def test_load_chrome_trace_round_trips_events_and_analysis():
    recorder = _hand_built_recorder()
    recorder.instant("trainer", "staleness", 3.0, args={"mean": 0.25})
    recorder.counter("replica-0", "tokens", 1.0, 128.0)
    recorder.counter("replica-0", "tokens", 2.0, 256.0)
    reloaded = load_chrome_trace(chrome_trace(recorder))
    assert reloaded.groups() == recorder.groups()
    assert reloaded.tracks() == recorder.tracks()
    assert len(reloaded.spans) == len(recorder.spans)
    assert len(reloaded.instants) == len(recorder.instants)
    assert len(reloaded.counters) == len(recorder.counters)
    assert reloaded.instants[0].args == {"mean": 0.25}
    # Timestamps survive the microsecond scaling to float precision.
    for original, back in zip(recorder.spans, reloaded.spans):
        assert back.begin == pytest.approx(original.begin, abs=1e-9)
        assert back.end == pytest.approx(original.end, abs=1e-9)
    assert [c.value for c in reloaded.counters] == [128.0, 256.0]

    original = analyze_recorder(recorder).as_dict()
    round_tripped = analyze_recorder(reloaded).as_dict()
    assert set(original["groups"]) == set(round_tripped["groups"])
    a = original["groups"]["unit"]
    b = round_tripped["groups"]["unit"]
    for phase in (*PHASE_PRIORITY, OTHER_PHASE):
        assert b["phase_seconds"][phase] == pytest.approx(
            a["phase_seconds"][phase], abs=1e-6)


def test_load_chrome_trace_rejects_non_trace_payload():
    with pytest.raises(ValueError):
        load_chrome_trace({"not": "a trace"})


# --------------------------------------------------------------------------- real systems
def _traced_unit_analysis(scenario, system):
    unit = next(u for u in scenario.expand() if u.system == system)
    recorder = TraceRecorder(group=f"{unit.scenario_id}:{unit.label}")
    from repro.bench.runner import system_for_unit

    with use_tracer(recorder):
        system_for_unit(unit).run()
    return analyze_recorder(recorder).groups[0]


def test_verl_trace_is_generation_bound(analysis_scenario):
    g = _traced_unit_analysis(analysis_scenario, "verl")
    assert g.bound == "generation"
    assert g.derived["critical_path_gen_share"] > 0.5
    assert 0.0 < g.derived["gen_bubble_frac"] < 1.0
    assert sum(g.phase_shares.values()) == pytest.approx(1.0, abs=1e-9)
    assert sum(p.shares.get("generation", 0.0) > 0 for p in g.iterations)


def test_laminar_trace_has_no_bubble_metric(analysis_scenario):
    g = _traced_unit_analysis(analysis_scenario, "laminar")
    # Laminar generation is continuous and off-span (counters carry it), so
    # the bubble fraction must be absent rather than a meaningless 1.0.
    assert "gen_bubble_frac" not in g.derived
    assert g.derived["critical_path_train_share"] > 0.0
    assert sum(g.phase_shares.values()) == pytest.approx(1.0, abs=1e-9)


def test_faulted_laminar_attributes_recovery_family():
    from repro.bench.registry import get_scenario

    # The committed chaos drill: seeded fault storms on the Laminar simulator.
    g = _traced_unit_analysis(get_scenario("chaos_7b"), "laminar")
    recovery = [f for f in g.families if SPAN_FAMILIES.get(f.name) == "recovery"]
    assert recovery and recovery[0].busy_s > 0.0
    assert sum(g.phase_shares.values()) == pytest.approx(1.0, abs=1e-9)


# --------------------------------------------------------------------------- bench extras
def test_traced_backend_attaches_derived_extras(analysis_scenario):
    from repro.bench.exec import TracingSerialBackend
    from repro.bench.runner import run_scenarios

    recorder = TraceRecorder()
    results = run_scenarios([analysis_scenario],
                            backend=TracingSerialBackend(recorder))
    units = {u.system: u for u in results[0].units}
    assert set(units["verl"].extras) <= set(DERIVED_METRIC_KEYS)
    assert units["verl"].extras["critical_path_gen_share"] > 0.5
    assert "gen_bubble_frac" not in units["laminar"].extras
    # Extras ride the artifact round-trip but never touch metrics.
    payload = units["verl"].as_dict()
    assert "extras" in payload
    assert set(payload["extras"]).isdisjoint(payload["metrics"])
    assert UnitResult.from_dict(payload).extras == units["verl"].extras
    # Untraced units serialize without the key (artifact byte-identity).
    plain = run_scenarios([analysis_scenario])[0].units[0]
    assert "extras" not in plain.as_dict()


# --------------------------------------------------------------------------- derived gates
def _result_with_extras(extras):
    unit = UnitResult(
        scenario_id="s", system="laminar", model_size="7B", total_gpus=16,
        variant="", seed=0, status="ok",
        metrics={"throughput_tok_s": 100.0}, extras=dict(extras),
    )
    return ScenarioResult(scenario_id="s", kind="throughput", units=[unit])


def test_judge_derived_gates_both_directions_and_skips_missing():
    base = _result_with_extras({"sync_frac": 0.10}).units[0]
    up = _result_with_extras({"sync_frac": 0.20}).units[0]
    down = _result_with_extras({"sync_frac": 0.05}).units[0]
    near = _result_with_extras({"sync_frac": 0.101}).units[0]
    assert judge_derived("sync_frac", base, up, 0.05).verdict == VERDICT_REGRESSION
    assert judge_derived("sync_frac", base, down, 0.05).verdict == VERDICT_REGRESSION
    assert judge_derived("sync_frac", base, near, 0.05).passed
    # Either side missing the metric (untraced run) -> skipped, not failed.
    untraced = _result_with_extras({}).units[0]
    assert judge_derived("sync_frac", untraced, up, 0.05) is None
    assert judge_derived("sync_frac", base, untraced, 0.05) is None
    zero = _result_with_extras({"sync_frac": 0.0}).units[0]
    verdict = judge_derived("sync_frac", zero, up, 0.05)
    assert verdict.verdict == VERDICT_REGRESSION and math.isinf(verdict.delta)


def test_compare_runs_includes_derived_verdicts():
    baseline = [_result_with_extras({"sync_frac": 0.10})]
    candidate = [_result_with_extras({"sync_frac": 0.30})]
    report = compare_runs(candidate, baseline, tolerance=0.05,
                          derived=("sync_frac",))
    metrics = {v.metric for v in report.verdicts}
    assert "sync_frac" in metrics and "throughput_tok_s" in metrics
    assert not report.passed
    # Without the flag the same pair passes (primary metric is unchanged).
    assert compare_runs(candidate, baseline, tolerance=0.05).passed
    # Untraced baseline: the derived gate is skipped entirely.
    report = compare_runs(candidate, [_result_with_extras({})],
                          tolerance=0.05, derived=("sync_frac",))
    assert report.passed


# --------------------------------------------------------------------------- diff
def test_diff_analyses_reports_share_movement():
    a = analyze_recorder(_hand_built_recorder())
    moved = TraceRecorder(group="unit")
    moved.span("trainer", "iteration", 0.0, 8.0)
    moved.span("trainer", "training", 0.0, 4.0)  # training grew 2s
    moved.span("sync", "weight_sync", 4.0, 5.0)
    moved.span("rollout", "generation", 0.0, 8.0)
    b = analyze_recorder(moved)
    diff = diff_analyses(b, a)
    delta = diff["groups"]["unit"]["phase_share_delta"]
    assert delta["training"] == pytest.approx(0.25)
    assert delta["generation"] == pytest.approx(-0.25)
    text = render_diff(diff)
    assert "training+25.0%" in text
    # Self-diff: no movement.
    assert "unchanged" in render_diff(diff_analyses(a, a))


# --------------------------------------------------------------------------- CLI
def test_cli_analyze_renders_and_writes_json(tmp_path, analysis_scenario, capsys):
    trace_path = tmp_path / "t.json"
    assert bench_main(["trace", analysis_scenario.id, "--unit", "0",
                       "-o", str(trace_path), "--quiet"]) == 0
    capsys.readouterr()
    json_path = tmp_path / "analysis.json"
    assert bench_main(["analyze", str(trace_path),
                       "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "critical path:" in out and "top span families" in out
    payload = json.loads(json_path.read_text())
    groups = payload["analysis"]["groups"]
    label = f"{analysis_scenario.id}:verl:7B/16gpu"
    shares = groups[label]["phase_shares"]
    assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)

    # Self-diff through the CLI: no drift.
    assert bench_main(["analyze", str(trace_path),
                       "--diff", str(trace_path)]) == 0
    assert "unchanged" in capsys.readouterr().out


def test_cli_analyze_error_paths(tmp_path, capsys):
    assert bench_main(["analyze", str(tmp_path / "missing.json")]) == 2
    assert "error:" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"not": "a trace"}))
    assert bench_main(["analyze", str(bad)]) == 2
    assert "traceEvents" in capsys.readouterr().err


def test_cli_trace_rejects_missing_output_directory(analysis_scenario, capsys):
    assert bench_main(["trace", analysis_scenario.id,
                       "-o", "/nonexistent_dir_xyz/t.json"]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_render_analysis_mentions_derived_only_when_present():
    text = render_analysis(analyze_recorder(_hand_built_recorder()))
    assert "gen_bubble_frac" in text
    no_gen = TraceRecorder(group="unit")
    no_gen.span("trainer", "iteration", 0.0, 8.0)
    no_gen.span("trainer", "training", 0.0, 8.0)
    text = render_analysis(analyze_recorder(no_gen))
    assert "gen_bubble_frac" not in text

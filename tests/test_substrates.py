"""Tests for the network, cluster, KVCache and LLM cost-model substrates."""

import math

import pytest

from repro.llm import (
    DecodeModel,
    ParallelConfig,
    QWEN_7B,
    QWEN_32B,
    QWEN_72B,
    TrainingModel,
    fsdp_trainer_config,
    get_model,
    megatron_trainer_config,
    rollout_free_memory_for_kvcache,
)
from repro.sim import (
    Cluster,
    ClusterSpec,
    KVCache,
    KVCacheConfig,
    KVCacheError,
    RDMA_LINK,
    chain_pipelined_broadcast_time,
    gpu_direct_global_sync_time,
    kvcache_blocks_for_memory,
    optimal_chain_broadcast_time,
    optimal_chunk_count,
    storage_system_sync_time,
)


# --------------------------------------------------------------------------- network
def test_chain_broadcast_is_near_constant_in_node_count():
    """Appendix D: broadcast time is dominated by the bandwidth term."""
    nbytes = QWEN_72B.weight_bytes
    t8 = chain_pipelined_broadcast_time(nbytes, 8)
    t128 = chain_pipelined_broadcast_time(nbytes, 128)
    assert t128 < 2.0 * t8
    assert t128 >= t8  # monotone, but only weakly growing


def test_chain_broadcast_trivial_cases():
    assert chain_pipelined_broadcast_time(1e9, 1) == 0.0
    assert chain_pipelined_broadcast_time(0.0, 16) == 0.0
    with pytest.raises(ValueError):
        chain_pipelined_broadcast_time(1e9, 0)


def test_optimal_chunk_count_matches_closed_form():
    nbytes, nodes = 65e9, 64
    k = optimal_chunk_count(nbytes, nodes, RDMA_LINK)
    expected = math.sqrt((nodes - 2) * nbytes / RDMA_LINK.bandwidth / RDMA_LINK.startup)
    assert abs(k - expected) <= 1.0


def test_optimal_broadcast_is_lower_bound_of_eq1():
    nbytes, nodes = QWEN_32B.weight_bytes, 64
    t_star = optimal_chain_broadcast_time(nbytes, nodes)
    for chunks in (8, 64, 512, 4096):
        assert chain_pipelined_broadcast_time(nbytes, nodes, chunks) >= t_star - 1e-9


def test_gpu_direct_sync_grows_with_machines_and_storage_is_worse():
    small = gpu_direct_global_sync_time(QWEN_32B.weight_bytes, 4)
    big = gpu_direct_global_sync_time(QWEN_32B.weight_bytes, 64)
    assert big > small
    # §4.1: NFS/Redis-style sync is far slower than RDMA paths.
    assert storage_system_sync_time(QWEN_32B.weight_bytes, 8) > 10 * big


# --------------------------------------------------------------------------- cluster
def test_cluster_partition_and_replica_grouping():
    cluster = Cluster(ClusterSpec(num_machines=4, gpus_per_machine=8))
    placement = cluster.partition(trainer_gpus=16, rollout_gpus=16)
    assert placement.num_trainer_gpus == 16
    assert placement.num_rollout_gpus == 16
    replicas = placement.rollout_replicas(tensor_parallel=4)
    assert len(replicas) == 4
    for group in replicas:
        assert len({gpu.machine_id for gpu in group}) == 1  # TP never spans machines


def test_cluster_partition_rejects_oversubscription():
    cluster = Cluster(ClusterSpec(num_machines=1))
    with pytest.raises(ValueError):
        cluster.partition(trainer_gpus=8, rollout_gpus=8)


# --------------------------------------------------------------------------- kvcache
def test_kvcache_alloc_grow_free_roundtrip():
    cache = KVCache(KVCacheConfig(total_blocks=100, block_size=16))
    cache.allocate(1, 100)  # 7 blocks
    assert cache.used_blocks == 7
    cache.append_tokens(1, 16)
    assert cache.used_blocks == 8
    freed = cache.free(1)
    assert freed == 8
    assert cache.used_blocks == 0


def test_kvcache_rejects_double_allocation_and_overflow():
    cache = KVCache(KVCacheConfig(total_blocks=4, block_size=16))
    cache.allocate(1, 30)
    with pytest.raises(KVCacheError):
        cache.allocate(1, 10)
    with pytest.raises(KVCacheError):
        cache.allocate(2, 64)  # needs 4 blocks, only 2 free
    with pytest.raises(KVCacheError):
        cache.free(99)


def test_kvcache_blocks_for_memory():
    blocks = kvcache_blocks_for_memory(1e9, QWEN_7B.kv_bytes_per_token, 16)
    assert blocks > 0
    assert kvcache_blocks_for_memory(0.0, QWEN_7B.kv_bytes_per_token) == 0


# --------------------------------------------------------------------------- model specs
def test_qwen_parameter_counts_are_in_range():
    assert 7.0e9 < QWEN_7B.num_parameters < 8.5e9
    assert 31e9 < QWEN_32B.num_parameters < 34e9
    assert 71e9 < QWEN_72B.num_parameters < 75e9


def test_model_registry_lookup():
    assert get_model("7B") is QWEN_7B
    assert get_model("Qwen2.5-32B") is QWEN_32B
    with pytest.raises(KeyError):
        get_model("13B")


def test_kv_bytes_per_token_scale_with_sharding():
    full = QWEN_32B.kv_bytes_per_token
    assert QWEN_32B.kv_bytes_per_token_sharded(4) == pytest.approx(full / 4)


# --------------------------------------------------------------------------- decode roofline
def test_decode_latency_flat_then_rising():
    """Fig 4: decoding a small batch costs about the same as a mid-size batch."""
    decode = DecodeModel(QWEN_7B, tensor_parallel=2)
    t1 = decode.decode_step_time(1, 4096)
    t8 = decode.decode_step_time(8, 4096)
    t64 = decode.decode_step_time(64, 4096)
    t512 = decode.decode_step_time(512, 4096)
    assert t8 < 1.15 * t1
    assert t64 < 1.6 * t1
    assert t512 > t64  # eventually KV traffic raises the step time
    # Figure 4's absolute range: a few ms to a few tens of ms.
    assert 0.002 < t1 < 0.03
    assert t512 < 0.2


def test_decode_latency_decreases_with_tensor_parallel():
    t_tp2 = DecodeModel(QWEN_32B, tensor_parallel=2).decode_step_time(64, 4096)
    t_tp8 = DecodeModel(QWEN_32B, tensor_parallel=8).decode_step_time(64, 4096)
    assert t_tp8 < t_tp2


def test_decode_throughput_and_batch_bound():
    decode = DecodeModel(QWEN_7B, tensor_parallel=1)
    assert decode.decode_throughput(256, 2048) > decode.decode_throughput(8, 2048)
    bound = decode.batch_bound_for_latency_slack(2048, slack=2.0)
    assert bound >= 8
    assert decode.decode_step_time(bound, 2048) <= 2.0 * decode.decode_step_time(1, 2048) + 1e-9


def test_prefill_and_reprefill_costs():
    decode = DecodeModel(QWEN_7B, tensor_parallel=1)
    assert decode.prefill_time(0) == 0.0
    assert decode.prefill_time(2048) > 0.0
    assert decode.reprefill_time(4096) > decode.reprefill_time(1024)


# --------------------------------------------------------------------------- parallelism / training
def test_parallel_config_shard_math():
    config = ParallelConfig(tensor_parallel=4, pipeline_parallel=2, data_parallel=3)
    assert config.model_shards == 8
    assert config.world_size == 24
    assert config.shard_bytes(QWEN_32B) == pytest.approx(QWEN_32B.weight_bytes / 8)


def test_trainer_config_factories_validate_divisibility():
    assert fsdp_trainer_config(32, 8).world_size == 32
    assert megatron_trainer_config(64, 4, 2).data_parallel == 8
    with pytest.raises(ValueError):
        fsdp_trainer_config(30, 8)


def test_training_iteration_scales_with_tokens_and_gpus():
    small = TrainingModel(QWEN_7B, fsdp_trainer_config(8, 8))
    large = TrainingModel(QWEN_7B, fsdp_trainer_config(64, 8))
    tokens = 1e6
    assert small.iteration_time(tokens, 16) > large.iteration_time(tokens, 16)
    assert small.iteration_time(2 * tokens, 16) > small.iteration_time(tokens, 16)


def test_rollout_free_memory_positive_for_supported_configs():
    assert rollout_free_memory_for_kvcache(QWEN_7B, 80e9, 1) > 0
    assert rollout_free_memory_for_kvcache(QWEN_72B, 80e9, 8) > 0
    # A 72B model cannot serve on a single 80 GB GPU.
    assert rollout_free_memory_for_kvcache(QWEN_72B, 80e9, 1) == 0.0

"""Tests for `repro.bench.exec`: backend protocol, wire format, coordinator
fault paths (worker crash mid-lease, lease expiry, duplicate delivery, retry
budgets) and backend-vs-serial bit-equivalence — including the chaos drill
that kills a worker mid-grid."""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.bench import ScenarioConfig, register_scenario, run_scenarios, unregister_scenario
from repro.bench.cli import main as bench_main
from repro.bench.compare import VERDICT_TIMEOUT, compare_runs, judge_unit
from repro.bench.exec import (
    Coordinator,
    ProcessPoolBackend,
    QueueBackend,
    SerialBackend,
    WireError,
    default_backend,
    make_backend,
    parse_hostport,
    recv_message,
    send_message,
    unit_from_wire,
    unit_to_wire,
)
from repro.bench.registry import get_scenario
from repro.bench.runner import UnitResult, execute_unit
from repro.bench.store import save_artifact


def _tiny_scenario(scenario_id="exec_test_scenario", **kwargs):
    defaults = dict(
        id=scenario_id,
        description="test-only scenario",
        kind="throughput",
        systems=("laminar", "areal"),
        model_size="7B",
        gpu_scales=(16,),
        batch_scale=0.125,
        timeout_s=120.0,
        tags=("test-only",),
    )
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


@pytest.fixture
def tiny_scenario():
    scenario = register_scenario(_tiny_scenario())
    yield scenario
    unregister_scenario(scenario.id)


def _spawn_worker(host, port, jobs=1, max_units=None, extra=()):
    """A real `repro-bench worker` agent in a subprocess."""
    argv = [sys.executable, "-m", "repro.bench", "worker",
            "--connect", f"{host}:{port}", "--jobs", str(jobs)]
    if max_units is not None:
        argv += ["--max-units", str(max_units)]
    argv += list(extra)
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(argv, env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
                            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


# --------------------------------------------------------------------------- lazy exports
def test_repro_lazy_bench_exports_resolve_in_fresh_interpreter():
    """`repro.run_scenarios` / `repro.QueueBackend` must resolve without
    importing repro.bench first (the PEP 562 hook used to recurse: the
    `from . import bench` fromlist probe re-entered __getattr__)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c",
         "import repro; print(repro.run_scenarios.__name__, "
         "repro.QueueBackend.__name__)"],
        capture_output=True, text=True, timeout=120, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.split() == ["run_scenarios", "QueueBackend"]


# --------------------------------------------------------------------------- wire format
def test_wire_round_trips_units_and_frames():
    unit = _tiny_scenario(variants=(("v", (("staleness_bound", 2),)),)).expand()[1]
    assert unit_from_wire(unit_to_wire(unit)) == unit

    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    client = socket.create_connection(server.getsockname())
    peer, _ = server.accept()
    send_message(client, {"type": "hello", "payload": [1, 2.5, "x", None]})
    assert recv_message(peer) == {"type": "hello", "payload": [1, 2.5, "x", None]}
    # Closed connections surface as WireError, not silent truncation.
    client.close()
    with pytest.raises(WireError):
        recv_message(peer)
    peer.close()
    server.close()


def test_wire_rejects_untyped_and_oversized_frames():
    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    client = socket.create_connection(server.getsockname())
    peer, _ = server.accept()
    send_message(client, {"no_type": 1})
    with pytest.raises(WireError):
        recv_message(peer)
    client.sendall(b"\xff\xff\xff\xff")  # 4 GiB frame length
    with pytest.raises(WireError):
        recv_message(peer)
    for sock in (client, peer, server):
        sock.close()


def test_parse_hostport_forms():
    assert parse_hostport("10.0.0.1:7781") == ("10.0.0.1", 7781)
    assert parse_hostport(":7781") == ("127.0.0.1", 7781)
    assert parse_hostport("7781") == ("127.0.0.1", 7781)
    with pytest.raises(ValueError):
        parse_hostport("nope")
    with pytest.raises(ValueError):
        parse_hostport("host:99999")


# --------------------------------------------------------------------------- backend selection
def test_default_backend_matches_jobs():
    assert isinstance(default_backend(jobs=1), SerialBackend)
    assert isinstance(default_backend(jobs=4), ProcessPoolBackend)
    assert isinstance(default_backend(jobs=4, profile_top=5), SerialBackend)


def test_make_backend_names_and_validation():
    assert isinstance(make_backend("serial"), SerialBackend)
    assert isinstance(make_backend("process", jobs=2), ProcessPoolBackend)
    assert isinstance(make_backend("queue", connect="127.0.0.1:1"), QueueBackend)
    with pytest.raises(ValueError):
        make_backend("carrier-pigeon")
    with pytest.raises(ValueError):
        make_backend("process", jobs=2, profile_top=5)
    with pytest.raises(ValueError):
        QueueBackend(connect="h:1", bind="h:2")


# --------------------------------------------------------------------------- bit-equivalence
def test_process_and_queue_backends_match_serial_bit_identically(tiny_scenario):
    serial = run_scenarios([tiny_scenario], backend=SerialBackend())
    pooled = run_scenarios([tiny_scenario], backend=ProcessPoolBackend(jobs=2))
    with Coordinator() as coordinator:
        host, port = coordinator.address
        worker = _spawn_worker(host, port, jobs=2)
        try:
            queued = run_scenarios(
                [tiny_scenario], backend=QueueBackend(coordinator=coordinator)
            )
        finally:
            coordinator.close()
            assert worker.wait(timeout=30) == 0
    reference = [r.comparable() for r in serial]
    assert [r.comparable() for r in pooled] == reference
    assert [r.comparable() for r in queued] == reference
    # The regression gate agrees: every unit is exactly on the baseline.
    report = compare_runs(queued, serial, tolerance=0.0)
    assert report.passed and all(v.delta == 0.0 for v in report.verdicts)


def test_chaos_worker_killed_mid_grid_still_bit_identical():
    """The ISSUE acceptance drill: >=2 workers, one SIGKILLed mid-run, one
    joining late; merged results must equal the serial reference."""
    scenario = register_scenario(_tiny_scenario(
        "exec_chaos_scenario",
        systems=("verl", "one_step", "stream_gen", "areal", "laminar"),
    ))
    try:
        serial = run_scenarios([scenario], backend=SerialBackend())
        with Coordinator(heartbeat_s=0.25, worker_timeout_s=1.5) as coordinator:
            host, port = coordinator.address
            victim = _spawn_worker(host, port, jobs=1)
            killed = threading.Event()

            def progress(_unit):
                if not killed.is_set():
                    killed.set()
                    victim.send_signal(signal.SIGKILL)

            late = _spawn_worker(host, port, jobs=2)
            queued = run_scenarios(
                [scenario], backend=QueueBackend(coordinator=coordinator),
                progress=progress,
            )
            coordinator.close()
            victim.wait(timeout=30)
            assert late.wait(timeout=30) == 0
        assert killed.is_set()
        assert [r.comparable() for r in queued] == [r.comparable() for r in serial]
        assert all(u.status == "ok" for r in queued for u in r.units)
    finally:
        unregister_scenario(scenario.id)


def test_straggling_worker_speculatively_re_leased():
    """A SIGSTOPped worker goes silent without dropping its connection; the
    heartbeat-relative straggling detector must speculatively re-lease its
    unit (first result wins) long before the worker-timeout drop path, and
    the merged results must still equal the serial reference."""
    scenario = register_scenario(_tiny_scenario("exec_straggler_scenario"))
    try:
        serial = run_scenarios([scenario], backend=SerialBackend())
        # worker_timeout_s is deliberately enormous: if the run completes,
        # the speculative re-lease was the rescue, not the drop path.
        with Coordinator(heartbeat_s=0.25, worker_timeout_s=300.0) as coordinator:
            host, port = coordinator.address
            victim = _spawn_worker(host, port, jobs=1)
            frozen = threading.Event()
            reinforcements = []

            def freeze_then_reinforce():
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    with coordinator._lock:
                        holding = bool(coordinator._leases)
                    if holding:
                        victim.send_signal(signal.SIGSTOP)
                        frozen.set()
                        reinforcements.append(_spawn_worker(host, port, jobs=2))
                        return
                    time.sleep(0.01)

            watcher = threading.Thread(target=freeze_then_reinforce, daemon=True)
            watcher.start()
            queued = run_scenarios(
                [scenario], backend=QueueBackend(coordinator=coordinator)
            )
            watcher.join(timeout=30)
            assert frozen.is_set()
            assert coordinator.speculations >= 1
            victim.send_signal(signal.SIGCONT)
            coordinator.close()
            assert victim.wait(timeout=30) == 0
            assert reinforcements[0].wait(timeout=30) == 0
        assert [r.comparable() for r in queued] == [r.comparable() for r in serial]
        assert all(u.status == "ok" for r in queued for u in r.units)
    finally:
        unregister_scenario(scenario.id)


# --------------------------------------------------------------------------- coordinator fault paths
def _coordinator_units(count=3):
    scenario = _tiny_scenario(
        "exec_ledger_scenario",
        systems=("laminar",),
        variants=tuple((f"v{i}", ()) for i in range(count)),
    )
    return scenario.expand()


class _FakeWorkerConn:
    """Drive the coordinator's socket protocol by hand (no worker agent)."""

    def __init__(self, coordinator, jobs=4):
        host, port = coordinator.address
        self.sock = socket.create_connection((host, port), timeout=10.0)
        self.sock.settimeout(10.0)
        send_message(self.sock, {"type": "hello", "role": "worker",
                                 "wire_version": 1, "jobs": jobs})
        welcome = recv_message(self.sock)
        assert welcome["type"] == "welcome"
        self.worker_id = welcome["worker_id"]

    def lease(self):
        send_message(self.sock, {"type": "lease"})
        return recv_message(self.sock)

    def deliver(self, lease_id, result):
        send_message(self.sock, {"type": "result", "lease_id": lease_id,
                                 "result": result.as_dict()})

    def close(self):
        self.sock.close()


def _drain(submission, expected):
    """Collect (index, result) pairs from a submit_units iterator."""
    out = {}
    for index, result in submission:
        out[index] = result
    assert len(out) == expected
    return out


def test_coordinator_worker_death_requeues_leases():
    units = _coordinator_units(2)
    with Coordinator(heartbeat_s=0.25, worker_timeout_s=10.0) as coordinator:
        results = {}
        done = threading.Event()

        def consume():
            results.update(_drain(coordinator.submit_units(units), len(units)))
            done.set()

        threading.Thread(target=consume, daemon=True).start()
        flaky = _FakeWorkerConn(coordinator)
        lease = flaky.lease()
        assert lease["type"] == "unit"
        flaky.close()  # dies holding the lease -> connection-drop requeue

        healthy = _FakeWorkerConn(coordinator)
        served = 0
        while served < len(units):
            reply = healthy.lease()
            if reply["type"] == "idle":
                time.sleep(0.05)
                continue
            unit = unit_from_wire(reply["unit"])
            healthy.deliver(reply["lease_id"], execute_unit(unit, reply["timeout_s"]))
            served += 1
        assert done.wait(timeout=30)
        healthy.close()
    assert all(r.status == "ok" for r in results.values())


def test_coordinator_lease_expiry_requeues_and_exhausts_budget():
    units = _coordinator_units(1)
    # Tiny budget + zero grace: an unserved lease expires almost immediately.
    with Coordinator(heartbeat_s=0.1, worker_timeout_s=60.0, lease_grace_s=0.0,
                     max_attempts=2) as coordinator:
        results = {}
        done = threading.Event()

        def consume():
            results.update(
                _drain(coordinator.submit_units(units, timeout_s=0.2), len(units))
            )
            done.set()

        threading.Thread(target=consume, daemon=True).start()
        lazy = _FakeWorkerConn(coordinator)
        leases = []
        deadline = time.monotonic() + 30.0
        # Take every grant but never deliver: both attempts must expire.
        while len(leases) < 2 and time.monotonic() < deadline:
            reply = lazy.lease()
            if reply["type"] == "unit":
                leases.append(reply["lease_id"])
            else:
                time.sleep(0.05)
        assert done.wait(timeout=30)
        assert len(leases) == 2  # retry budget produced exactly two grants
        (result,) = results.values()
        assert result.status == "timeout"
        assert "retry budget exhausted" in result.error
        # A delivery for the expired lease is dropped, not double-recorded.
        lazy.deliver(leases[-1], execute_unit(units[0], 120.0))
        time.sleep(0.2)
        lazy.close()


def test_coordinator_duplicate_delivery_is_idempotent():
    units = _coordinator_units(1)
    with Coordinator(heartbeat_s=0.25) as coordinator:
        collected = []
        done = threading.Event()

        def consume():
            for item in coordinator.submit_units(units):
                collected.append(item)
            done.set()

        threading.Thread(target=consume, daemon=True).start()
        worker = _FakeWorkerConn(coordinator)
        while True:
            reply = worker.lease()
            if reply["type"] == "unit":
                break
            time.sleep(0.05)
        unit = unit_from_wire(reply["unit"])
        result = execute_unit(unit, reply["timeout_s"])
        worker.deliver(reply["lease_id"], result)
        worker.deliver(reply["lease_id"], result)  # duplicate: must be dropped
        assert done.wait(timeout=30)
        time.sleep(0.1)
        worker.close()
    assert len(collected) == 1


def test_coordinator_rejects_incompatible_hello():
    with Coordinator() as coordinator:
        sock = socket.create_connection(coordinator.address, timeout=10.0)
        sock.settimeout(10.0)
        send_message(sock, {"type": "hello", "role": "worker",
                            "wire_version": 999})
        reply = recv_message(sock)
        assert reply["type"] == "error"
        sock.close()


# --------------------------------------------------------------------------- timeout surfacing
def test_timeout_units_get_distinct_compare_verdict():
    ok = UnitResult(scenario_id="s", system="laminar", model_size="7B",
                    total_gpus=16, variant="", seed=0,
                    metrics={"throughput_tok_s": 100.0})
    timed_out = UnitResult(scenario_id="s", system="laminar", model_size="7B",
                           total_gpus=16, variant="", seed=0, status="timeout",
                           error="unit exceeded 1s budget")
    verdict = judge_unit("throughput", ok, timed_out, tolerance=0.05)
    assert verdict.verdict == VERDICT_TIMEOUT
    assert not verdict.passed


def test_cli_run_compare_reports_unit_timeout(tiny_scenario, tmp_path, capsys):
    artifact = str(tmp_path / "BENCH_exec_cli.json")
    assert bench_main(["run", "--scenario", tiny_scenario.id,
                       "--export", artifact]) == 0
    capsys.readouterr()
    # An absurd budget forces every unit over; the gate must call out
    # unit-timeout (not generic unit-error) and exit non-zero.
    code = bench_main(["run", "--scenario", tiny_scenario.id, "--export", artifact,
                       "--compare", "--timeout", "0.000001", "--no-save"])
    out = capsys.readouterr().out
    assert code == 1
    assert "unit-timeout" in out


# --------------------------------------------------------------------------- CLI integration
def test_cli_queue_backend_flag_validation(capsys):
    assert bench_main(["run", "--scenario", "smoke", "--bind", ":1"]) == 2
    assert "--backend queue" in capsys.readouterr().err
    assert bench_main(["run", "--scenario", "smoke", "--backend", "process",
                       "--connect", ":1"]) == 2
    assert bench_main(["run", "--scenario", "smoke", "--backend", "queue",
                       "--profile", "5", "--no-save"]) == 2
    capsys.readouterr()
    # --bind and --connect contradict each other; never silently prefer one.
    assert bench_main(["run", "--scenario", "smoke", "--backend", "queue",
                       "--bind", ":1", "--connect", ":2"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_cli_embedded_queue_run_with_cli_worker(tiny_scenario, capsys):
    """`repro-bench run --backend queue --bind :0`-equivalent via the API,
    with the worker launched through the real CLI subcommand."""
    with Coordinator() as coordinator:
        host, port = coordinator.address
        worker = _spawn_worker(host, port, jobs=2)
        try:
            queued = run_scenarios(
                [tiny_scenario], backend=QueueBackend(coordinator=coordinator)
            )
        finally:
            coordinator.close()
            assert worker.wait(timeout=30) == 0
    serial = run_scenarios([tiny_scenario], backend=SerialBackend())
    assert [r.comparable() for r in queued] == [r.comparable() for r in serial]


def test_worker_max_units_drains_and_exits(tiny_scenario):
    with Coordinator(heartbeat_s=0.25) as coordinator:
        host, port = coordinator.address
        first = _spawn_worker(host, port, jobs=1, max_units=1)
        second = _spawn_worker(host, port, jobs=1)
        try:
            queued = run_scenarios(
                [tiny_scenario], backend=QueueBackend(coordinator=coordinator)
            )
        finally:
            coordinator.close()
        assert first.wait(timeout=30) == 0  # left after its single unit
        assert second.wait(timeout=30) == 0
    assert all(u.status == "ok" for r in queued for u in r.units)


def test_cli_compare_rerun_through_queue_backend(tiny_scenario, tmp_path, capsys):
    """`repro-bench compare --backend queue --connect ...`: the compare
    re-run executes on the distributed backend (one coordinator + one CLI
    worker) and gates bit-identically against the serial baseline."""
    artifact = str(tmp_path / "BENCH_queue_compare.json")
    assert bench_main(["run", "--scenario", tiny_scenario.id,
                       "--export", artifact]) == 0
    capsys.readouterr()
    with Coordinator() as coordinator:
        host, port = coordinator.address
        worker = _spawn_worker(host, port, jobs=2)
        try:
            code = bench_main([
                "compare", "--baseline", artifact,
                "--backend", "queue", "--connect", f"{host}:{port}",
                "--tolerance", "0",
            ])
        finally:
            coordinator.close()
            assert worker.wait(timeout=30) == 0
    out = capsys.readouterr().out
    assert code == 0
    assert "re-running 1 scenario(s)" in out
    assert "no regression" in out


def test_cli_compare_backend_flags_validated(tmp_path, capsys):
    # --backend applies to re-runs only; artifact-vs-artifact comparisons
    # must reject it instead of silently ignoring the flag.
    artifact = str(tmp_path / "b.json")
    save_artifact([], artifact)
    code = bench_main(["compare", "--baseline", artifact,
                       "--candidate", artifact, "--backend", "queue"])
    assert code == 2
    assert "re-runs only" in capsys.readouterr().err


# --------------------------------------------------------------------------- fleet telemetry
class _StatusConn:
    """Drive the coordinator's ``status`` wire role by hand."""

    def __init__(self, coordinator):
        self.sock = socket.create_connection(coordinator.address, timeout=10.0)
        self.sock.settimeout(10.0)
        send_message(self.sock, {"type": "hello", "role": "status",
                                 "wire_version": 1})
        welcome = recv_message(self.sock)
        assert welcome["type"] == "welcome"

    def snapshot(self):
        send_message(self.sock, {"type": "status"})
        reply = recv_message(self.sock)
        assert reply["type"] == "status"
        return reply["status"]

    def close(self):
        try:
            send_message(self.sock, {"type": "goodbye"})
        except OSError:
            pass
        self.sock.close()


def test_status_snapshot_tracks_queue_leases_and_counters():
    units = _coordinator_units(2)
    with Coordinator(heartbeat_s=0.25) as coordinator:
        status = _StatusConn(coordinator)
        empty = status.snapshot()
        assert empty["queue_depth"] == 0
        assert empty["workers"] == [] and empty["leases"] == []
        assert empty["counters"]["units_completed"] == 0
        assert empty["unit_wall_s"] == {"count": 0, "mean_s": None,
                                        "last_s": None}
        assert json.dumps(empty)  # the whole snapshot is JSON-serializable

        collected = []
        done = threading.Event()

        def consume():
            for item in coordinator.submit_units(units):
                collected.append(item)
            done.set()

        threading.Thread(target=consume, daemon=True).start()
        worker = _FakeWorkerConn(coordinator)
        leases = []
        while len(leases) < 2:
            reply = worker.lease()
            if reply["type"] == "unit":
                leases.append(reply)
            else:
                time.sleep(0.05)

        mid = status.snapshot()
        assert {l["lease_id"] for l in mid["leases"]} == {
            r["lease_id"] for r in leases
        }
        lease = mid["leases"][0]
        assert lease["scenario_id"] == units[0].scenario_id
        assert lease["attempt"] == 1 and not lease["speculated"]
        assert lease["deadline_in_s"] > 0
        assert mid["workers"][0]["leases"] == 2
        assert mid["batches"] == [
            {"batch_id": mid["batches"][0]["batch_id"], "units": 2,
             "completed": 0, "remaining": 2}
        ]

        for reply in leases:
            unit = unit_from_wire(reply["unit"])
            result = execute_unit(unit, reply["timeout_s"])
            send_message(worker.sock, {
                "type": "result", "lease_id": reply["lease_id"],
                "result": result.as_dict(), "wall_s": 0.5,
            })
        assert done.wait(timeout=30)
        final = status.snapshot()
        assert final["counters"]["units_completed"] == 2
        assert final["counters"]["requeues"] == 0
        assert final["unit_wall_s"]["count"] == 2
        assert final["unit_wall_s"]["mean_s"] == pytest.approx(0.5)
        assert final["workers"][0]["units_done"] == 2
        assert final["workers"][0]["last_wall_s"] == pytest.approx(0.5)
        assert final["batches"] == []  # completed batches leave the ledger
        worker.close()
        status.close()
    assert len(collected) == 2


def test_heartbeat_piggyback_surfaces_inflight_progress():
    with Coordinator(heartbeat_s=0.25) as coordinator:
        worker = _FakeWorkerConn(coordinator)
        send_message(worker.sock, {
            "type": "heartbeat",
            "inflight": [{"unit": "laminar:7B/16gpu", "lease": 7,
                          "running_s": 1.25}],
            "last_wall_s": 3.5,
        })
        status = _StatusConn(coordinator)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            snap = status.snapshot()
            if snap["workers"] and snap["workers"][0]["inflight"]:
                break
            time.sleep(0.05)
        entry = snap["workers"][0]
        assert entry["inflight"] == [{"unit": "laminar:7B/16gpu", "lease": 7,
                                      "running_s": 1.25}]
        assert entry["last_wall_s"] == 3.5
        # A bare heartbeat (an older worker) clears nothing and breaks nothing.
        send_message(worker.sock, {"type": "heartbeat"})
        time.sleep(0.2)
        assert status.snapshot()["workers"][0]["last_wall_s"] == 3.5
        status.close()
        worker.close()


def test_real_worker_heartbeats_carry_wall_clock(tiny_scenario):
    units = [u for u in tiny_scenario.expand() if u.system == "laminar"]
    with Coordinator(heartbeat_s=0.25) as coordinator:
        host, port = coordinator.address
        worker = _spawn_worker(host, port, jobs=1)
        status = _StatusConn(coordinator)
        try:
            results = list(coordinator.submit_units(units, timeout_s=120.0))
            assert len(results) == len(units)
            deadline = time.monotonic() + 15.0
            seen = None
            while time.monotonic() < deadline:
                snap = status.snapshot()
                if snap["counters"]["units_completed"] == len(units):
                    seen = snap
                    break
                time.sleep(0.1)
            assert seen is not None
            assert seen["unit_wall_s"]["count"] == len(units)
            assert seen["unit_wall_s"]["mean_s"] > 0
        finally:
            status.close()
            coordinator.close()
            worker.wait(timeout=30)


def test_cli_status_renders_and_emits_json(capsys):
    with Coordinator() as coordinator:
        host, port = coordinator.address
        assert bench_main(["status", "--connect", f"{host}:{port}"]) == 0
        out = capsys.readouterr().out
        assert f"coordinator {host}:{port}" in out
        assert "no workers connected" in out
        assert bench_main(["status", "--connect", f"{host}:{port}",
                           "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert set(snapshot) >= {"queue_depth", "workers", "leases",
                                 "batches", "counters", "unit_wall_s"}


def test_cli_status_unreachable_coordinator(capsys):
    # A port nothing listens on: connect must fail fast with exit 1.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    free_port = probe.getsockname()[1]
    probe.close()
    assert bench_main(["status", "--connect",
                       f"127.0.0.1:{free_port}"]) == 1
    assert "could not reach coordinator" in capsys.readouterr().err

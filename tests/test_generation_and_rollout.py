"""Tests for the replica generation engine, environments and trajectory types."""

import numpy as np
import pytest

from repro.rollout import (
    ReplicaGenerationState,
    RolloutReplicaConfig,
    SequenceState,
    SimulatedEnvironment,
    TrajectoryFactory,
    TurnSchedule,
    build_sequence_states,
)
from repro.llm import QWEN_7B
from repro.sim import KVCacheConfig
from repro.types import Prompt, Trajectory
from repro.workload import PromptDataset, math_task, tool_task


def make_replica(max_concurrency=64, blocks=4096, tp=1):
    config = RolloutReplicaConfig(QWEN_7B, tensor_parallel=tp, max_concurrency=max_concurrency)
    return ReplicaGenerationState(
        replica_id=0,
        decode_model=config.decode_model(),
        kvcache_config=KVCacheConfig(total_blocks=blocks),
        max_concurrency=max_concurrency,
    )


def make_states(lengths, prompt_tokens=64, start_id=0):
    states = []
    for offset, length in enumerate(lengths):
        prompt = Prompt(prompt_id=start_id + offset, group_id=0, prompt_tokens=prompt_tokens)
        trajectory = Trajectory(traj_id=start_id + offset, prompt=prompt, target_tokens=length)
        states.append(SequenceState(trajectory=trajectory, schedule=TurnSchedule.single_turn(length)))
    return states


# --------------------------------------------------------------------------- types
def test_trajectory_progress_and_staleness():
    prompt = Prompt(prompt_id=0, group_id=0, prompt_tokens=100)
    trajectory = Trajectory(traj_id=0, prompt=prompt, target_tokens=50, weight_version=2)
    trajectory.advance(30, weight_version=2)
    assert not trajectory.done and trajectory.remaining_tokens == 20
    trajectory.advance(40, weight_version=3)
    assert trajectory.done and trajectory.generated_tokens == 50
    assert trajectory.mixed_versions
    assert trajectory.inherent_staleness(actor_version_at_finish=5) == 3
    assert trajectory.total_tokens == 150


def test_turn_schedule_validation():
    with pytest.raises(ValueError):
        TurnSchedule(segments=[], env_latencies=[])
    with pytest.raises(ValueError):
        TurnSchedule(segments=[10], env_latencies=[1.0, 2.0])
    schedule = TurnSchedule(segments=[10, 20], env_latencies=[3.0, 0.0])
    assert schedule.total_tokens == 30 and schedule.num_turns == 2


# --------------------------------------------------------------------------- engine basics
def test_single_sequence_completion_time_matches_decode_model():
    replica = make_replica()
    states = make_states([100])
    replica.add_sequences(states)
    duration, done = replica.run_to_completion()
    assert len(done) == 1 and done[0].done
    step = replica.decode_model.decode_step_time(1, 64 + 50)
    # 100 decode steps at roughly the single-sequence step time.
    assert duration == pytest.approx(100 * step, rel=0.25)
    assert replica.stats.tokens_generated == 100
    assert replica.is_idle


def test_completion_order_follows_length():
    replica = make_replica()
    replica.add_sequences(make_states([500, 50, 200]))
    _, done = replica.run_to_completion()
    assert [t.traj_id for t in sorted(done, key=lambda t: t.finish_time)] == [1, 2, 0]


def test_batched_decode_is_faster_than_serial():
    lengths = [200] * 16
    batched = make_replica()
    batched.add_sequences(make_states(lengths))
    batched_time, _ = batched.run_to_completion()

    serial_total = 0.0
    for i, length in enumerate(lengths):
        replica = make_replica()
        replica.add_sequences(make_states([length], start_id=100 + i))
        duration, _ = replica.run_to_completion()
        serial_total += duration
    assert batched_time < 0.25 * serial_total


def test_interrupted_advance_preserves_token_accounting():
    replica = make_replica()
    replica.add_sequences(make_states([300, 300]))
    total_target = 600
    # Advance in many small, unaligned windows (as the Laminar loop does).
    while not replica.is_idle:
        delta = replica.next_event_in()
        if delta is None:
            break
        replica.advance(min(delta, 0.37))
    assert replica.stats.tokens_generated == total_target


def test_kvcache_queueing_and_preemption_free_progress():
    # Tiny cache: only ~2 sequences fit concurrently; the rest wait.
    replica = make_replica(blocks=64)
    replica.add_sequences(make_states([200] * 6, prompt_tokens=128))
    assert replica.num_decoding < 6
    assert replica.num_queued > 0
    _, done = replica.run_to_completion()
    assert len(done) == 6
    assert all(t.done for t in done)


def test_remove_sequences_releases_cache_and_requeues_elsewhere():
    replica = make_replica()
    states = make_states([400, 700, 1000])
    replica.add_sequences(states)
    replica.advance(replica.next_event_in())  # the shortest sequence completes
    removed = replica.remove_all()
    assert len(removed) == 2
    assert replica.is_idle
    assert replica.kvcache.used_blocks == 0
    # Migrated sequences resume on another replica and still finish.
    other = make_replica()
    for state in removed:
        state.needs_reprefill = True
    other.add_sequences(removed)
    _, done = other.run_to_completion()
    assert len(done) == 2
    assert other.stats.reprefill_tokens > 0


def test_multi_turn_env_wait_blocks_decoding():
    replica = make_replica()
    schedule = TurnSchedule(segments=[50, 50], env_latencies=[30.0, 0.0])
    prompt = Prompt(prompt_id=0, group_id=0, prompt_tokens=64, multi_turn=True, max_turns=2)
    trajectory = Trajectory(traj_id=0, prompt=prompt, target_tokens=100)
    replica.add_sequences([SequenceState(trajectory=trajectory, schedule=schedule)])
    duration, done = replica.run_to_completion()
    assert len(done) == 1
    assert done[0].turns_done == 2
    assert duration > 30.0  # the environment latency is on the critical path
    assert replica.stats.env_blocked_time > 0.0


def test_inject_stall_and_weight_version_guard():
    replica = make_replica()
    replica.inject_stall(5.0, busy=False)
    assert replica.clock == 5.0
    replica.set_weight_version(3)
    with pytest.raises(ValueError):
        replica.set_weight_version(1)
    with pytest.raises(ValueError):
        replica.inject_stall(-1.0)


def test_reprefill_all_inflight_charges_time():
    replica = make_replica()
    replica.add_sequences(make_states([500, 800, 1100, 1400]))
    replica.advance(replica.next_event_in())  # shortest finishes, three remain in flight
    before = replica.clock
    stall = replica.reprefill_all_inflight()
    assert stall > 0
    assert replica.clock == pytest.approx(before + stall)
    assert all(s.trajectory.reprefill_count == 1 for s in replica.sequences())


# --------------------------------------------------------------------------- factory / environment
def test_trajectory_factory_is_deterministic_per_seed():
    task = math_task("7B")
    dataset = PromptDataset(task, num_questions=50, seed=0)
    prompts = dataset.sample_batch(2, np.random.default_rng(0))
    lengths_a = [s.trajectory.target_tokens for s in TrajectoryFactory(task, seed=7).make(prompts)]
    lengths_b = [s.trajectory.target_tokens for s in TrajectoryFactory(task, seed=7).make(prompts)]
    assert lengths_a == lengths_b


def test_trajectory_factory_multi_turn_schedules():
    task = tool_task("7B", max_turns=8)
    dataset = PromptDataset(task, num_questions=20, seed=1)
    prompts = dataset.sample_batch(2, np.random.default_rng(1))
    states = TrajectoryFactory(task, seed=2).make(prompts)
    assert any(s.schedule.num_turns > 1 for s in states)
    for state in states:
        assert state.schedule.num_turns <= 8
        assert state.schedule.env_latencies[-1] == 0.0
        assert state.schedule.total_tokens == state.trajectory.target_tokens


def test_environment_scoring_rewards_are_binary_and_difficulty_sensitive():
    task = math_task("7B")
    env = SimulatedEnvironment(task, seed=0)
    easy = Prompt(prompt_id=0, group_id=0, prompt_tokens=64, difficulty=0.05)
    hard = Prompt(prompt_id=1, group_id=1, prompt_tokens=64, difficulty=0.95)
    easy_rewards, hard_rewards = [], []
    for i in range(300):
        t_easy = Trajectory(traj_id=1000 + i, prompt=easy, target_tokens=100)
        t_easy.advance(100, 0)
        t_hard = Trajectory(traj_id=2000 + i, prompt=hard, target_tokens=100)
        t_hard.advance(100, 0)
        easy_rewards.append(env.score(t_easy))
        hard_rewards.append(env.score(t_hard))
    assert set(easy_rewards) <= {-1.0, 1.0}
    assert np.mean(easy_rewards) > np.mean(hard_rewards)


def test_build_sequence_states_alignment_check():
    states = make_states([10, 20])
    trajectories = [s.trajectory for s in states]
    schedules = [s.schedule for s in states]
    assert len(build_sequence_states(trajectories, schedules)) == 2
    with pytest.raises(ValueError):
        build_sequence_states(trajectories, schedules[:1])


def test_replica_config_kvcache_sizing():
    config = RolloutReplicaConfig(QWEN_7B, tensor_parallel=1)
    kv = config.kvcache_config()
    assert kv.total_tokens > 100_000  # most of an 80 GB GPU is KVCache for a 7B
    from repro.llm import QWEN_72B
    with pytest.raises(ValueError):
        RolloutReplicaConfig(QWEN_72B, tensor_parallel=1).kvcache_config()

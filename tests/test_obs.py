"""Tests for ``repro.obs``: tracing primitives, the bit-identity contract,
Chrome-trace export, the ``trace`` CLI verb and structured run logging.

The load-bearing property is the determinism contract: attaching a
:class:`TraceRecorder` must not change a single simulated number.  Every
system in the registry is exercised traced-vs-untraced, and the CLI-level
gate (``run --trace --compare --tolerance 0``) is driven end to end.
"""

import io
import json
import logging
from collections import defaultdict
from dataclasses import replace

import pytest

from repro.bench.cli import main as bench_main
from repro.bench.registry import (
    ScenarioConfig,
    register_scenario,
    unregister_scenario,
)
from repro.bench.runner import execute_unit
from repro.bench.store import default_artifact_path
from repro.experiments.placements import make_system_config
from repro.metrics.timeline import EventCounterSeries, TimeSeries
from repro.obs import (
    NULL_TRACER,
    TraceRecorder,
    chrome_trace,
    configure_logging,
    current_tracer,
    get_run_logger,
    summarise_trace,
    use_tracer,
)
from repro.sim.engine import Environment
from repro.systems import make_system
from repro.systems.base import available_systems, get_system_class


def _small_config(name):
    config = make_system_config(name, "7B", 16, seed=7).scaled(0.125)
    return replace(config, num_iterations=2, warmup_iterations=0)


def _fingerprint(result):
    """Every simulated number a run produces, for exact equality checks."""
    return (
        result.wall_clock,
        tuple(
            (r.iteration, r.start_time, r.end_time, r.tokens_trained,
             r.trajectories, r.mean_reward, r.weight_version)
            for r in result.iterations
        ),
        tuple(result.staleness_samples),
        tuple(sorted(result.extras.items())),
    )


@pytest.fixture
def obs_scenario():
    scenario = register_scenario(ScenarioConfig(
        id="obs_test_scenario",
        description="test-only scenario for observability tests",
        kind="throughput",
        systems=("verl", "laminar"),
        model_size="7B",
        gpu_scales=(16,),
        batch_scale=0.125,
        iterations=2,
        warmup=0,
        timeout_s=300.0,
        tags=("test-only",),
    ))
    yield scenario
    unregister_scenario(scenario.id)


# --------------------------------------------------------------------------- primitives
def test_environment_defaults_to_null_tracer():
    env = Environment()
    assert env.tracer is NULL_TRACER
    assert env.tracer.enabled is False


def test_use_tracer_scopes_and_nests():
    assert current_tracer() is NULL_TRACER
    outer, inner = TraceRecorder(), TraceRecorder()
    with use_tracer(outer):
        assert current_tracer() is outer
        assert Environment().tracer is outer
        with use_tracer(inner):
            assert current_tracer() is inner
        assert current_tracer() is outer
    assert current_tracer() is NULL_TRACER


def test_recorder_span_validation_and_introspection():
    recorder = TraceRecorder(group="unit-a")
    recorder.span("trainer", "iteration", 0.0, 10.0, args={"iteration": 1})
    recorder.span("trainer", "training", 2.0, 8.0)
    recorder.instant("trainer", "staleness", 8.0, args={"mean": 0.5})
    recorder.set_group("unit-b")
    recorder.counter("replica-0", "tokens", 1.0, 128.0)
    with pytest.raises(ValueError):
        recorder.span("trainer", "backwards", 5.0, 4.0)
    assert recorder.num_events() == 4
    assert recorder.groups() == ["unit-a", "unit-b"]
    assert recorder.tracks() == [("unit-a", "trainer"), ("unit-b", "replica-0")]
    assert recorder.span_names() == ["iteration", "training"]
    assert recorder.spans[0].duration == 10.0
    # Recorded events are snapshots: mutating the caller's args dict later
    # must not rewrite history.
    args = {"k": 1}
    recorder.span("sync", "weight_sync", 0.0, 1.0, args=args)
    args["k"] = 2
    assert recorder.spans[-1].args == {"k": 1}


def test_counter_batch_and_clear():
    recorder = TraceRecorder()
    recorder.counter_batch("replica-3", "tokens", [(0.5, 10.0), (1.5, 30.0)])
    assert [(c.ts, c.value) for c in recorder.counters] == [(0.5, 10.0), (1.5, 30.0)]
    assert recorder.counters[0].track == "replica-3"
    recorder.clear()
    assert recorder.num_events() == 0


# --------------------------------------------------------------------------- bit-identity
@pytest.mark.parametrize("name", available_systems())
def test_traced_run_is_bit_identical_and_covers_declared_spans(name):
    config = _small_config(name)
    plain = make_system(config).run()
    recorder = TraceRecorder(group=name)
    with use_tracer(recorder):
        traced = make_system(config).run()
    assert _fingerprint(traced) == _fingerprint(plain)
    assert recorder.num_events() > 0
    declared = set(get_system_class(name).capabilities.trace_spans)
    assert declared, f"system {name!r} declares no trace spans"
    emitted = set(recorder.span_names())
    missing = declared - emitted
    assert not missing, f"system {name!r} never emitted declared spans {missing}"


def test_every_system_declares_trace_spans_with_iteration():
    for name in available_systems():
        spans = get_system_class(name).capabilities.trace_spans
        assert "iteration" in spans, name


def test_execute_unit_bit_identical_under_recorder(obs_scenario):
    unit = obs_scenario.expand()[0]
    plain = execute_unit(unit)
    recorder = TraceRecorder()
    with use_tracer(recorder):
        traced = execute_unit(unit)
    assert plain.status == traced.status == "ok"
    assert plain.metrics == traced.metrics


# --------------------------------------------------------------------------- export
def test_chrome_trace_payload_shape():
    recorder = TraceRecorder(group="g")
    recorder.span("trainer", "iteration", 0.0, 2.0)
    recorder.instant("machine-0", "failure", 1.0, args={"kind": "rollout"})
    recorder.counter("replica-0", "tokens", 0.5, 64.0)
    payload = chrome_trace(recorder)
    events = payload["traceEvents"]
    assert payload["otherData"]["groups"] == 1
    phases = {e["ph"] for e in events}
    assert {"M", "X", "i", "C"} <= phases
    span = next(e for e in events if e["ph"] == "X")
    assert span["ts"] == 0.0 and span["dur"] == 2.0 * 1e6  # seconds -> us
    counter = next(e for e in events if e["ph"] == "C")
    assert counter["name"] == "replica-0:tokens"
    assert counter["args"]["value"] == 64.0
    assert "empty" in summarise_trace(TraceRecorder())
    assert "trainer" in summarise_trace(recorder)


def test_write_chrome_trace_serialises_numpy_args(tmp_path):
    np = pytest.importorskip("numpy")
    recorder = TraceRecorder()
    recorder.span("trainer", "training", 0.0, 1.0,
                  args={"tokens": np.int64(4096), "rate": np.float64(0.5)})
    recorder.instant("trainer", "staleness", 1.0, args={"max": np.int32(3)})
    path = tmp_path / "np_trace.json"
    from repro.obs import write_chrome_trace

    write_chrome_trace(recorder, str(path))
    events = json.loads(path.read_text())["traceEvents"]
    span = next(e for e in events if e["ph"] == "X")
    assert span["args"] == {"tokens": 4096, "rate": 0.5}


def test_cli_trace_round_trip(tmp_path, obs_scenario, capsys):
    out_path = tmp_path / "trace.json"
    code = bench_main(["trace", obs_scenario.id, "--all-units",
                       "-o", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "2 unit trace(s) written" in out

    # --all-units writes one collision-free file per unit, named for the
    # unit's stable grid identity.
    per_unit = {
        tmp_path / f"trace.{obs_scenario.id}.u000.verl.json":
            f"{obs_scenario.id}:verl:7B/16gpu",
        tmp_path / f"trace.{obs_scenario.id}.u001.laminar.json":
            f"{obs_scenario.id}:laminar:7B/16gpu",
    }
    assert not out_path.exists()  # no merged blob alongside the per-unit files
    events = []
    for path, group in per_unit.items():
        assert path.exists(), path
        unit_events = json.loads(path.read_text())["traceEvents"]
        procs = [e for e in unit_events
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert {p["args"]["name"] for p in procs} == {group}
        # pids restart per file, so event streams must never be merged
        # key-blind across files.
        events.extend((group, e) for e in unit_events)
    threads = [e for _, e in events
               if e["ph"] == "M" and e["name"] == "thread_name"]
    track_names = {t["args"]["name"] for t in threads}
    assert "trainer" in track_names and "sync" in track_names

    spans = [(g, e) for g, e in events if e["ph"] == "X"]
    assert spans and all(e["dur"] >= 0 for _, e in spans)
    # Same-name spans on one track never partially overlap: consecutive
    # instances are either disjoint (iterations tile the run) or nested.
    by_key = defaultdict(list)
    for g, e in spans:
        by_key[(g, e["pid"], e["tid"], e["name"])].append(
            (e["ts"], e["ts"] + e["dur"]))
    for (_, _, _, name), intervals in by_key.items():
        intervals.sort()
        for (b1, e1), (b2, e2) in zip(intervals, intervals[1:]):
            disjoint = b2 >= e1 - 1e-3  # trace-us jitter tolerance
            nested = e2 <= e1 + 1e-3
            assert disjoint or nested, (name, (b1, e1), (b2, e2))
    assert any(e["ph"] == "C" for _, e in events)  # token/KV counters made it


def test_cli_trace_rejects_out_of_range_unit(obs_scenario, capsys):
    assert bench_main(["trace", obs_scenario.id, "--unit", "99",
                       "-o", "/dev/null"]) == 2
    assert "out of range" in capsys.readouterr().err


def test_cli_run_trace_requires_serial_backend(obs_scenario, tmp_path, capsys):
    code = bench_main(["run", "--scenario", obs_scenario.id, "--no-save",
                       "--trace", str(tmp_path / "t.json"),
                       "--backend", "process", "--jobs", "2"])
    assert code == 2
    assert "serial" in capsys.readouterr().err


def test_cli_run_trace_gates_bit_identical(tmp_path, obs_scenario, capsys):
    baseline = str(tmp_path / "baseline.json")
    trace_path = str(tmp_path / "trace.json")
    assert bench_main(["run", "--scenario", obs_scenario.id,
                       "--export", baseline, "--quiet"]) == 0
    capsys.readouterr()
    code = bench_main(["run", "--scenario", obs_scenario.id,
                       "--trace", trace_path, "--compare",
                       "--baseline", baseline, "--tolerance", "0",
                       "--no-save"])
    out = capsys.readouterr().out
    assert code == 0
    assert "no regression" in out
    payload = json.loads((tmp_path / "trace.json").read_text())
    assert payload["traceEvents"]


# --------------------------------------------------------------------------- profiling
def test_cli_profile_json_writes_hotspots_not_artifacts(
    tmp_path, obs_scenario, capsys, monkeypatch
):
    monkeypatch.chdir(tmp_path)
    profile_path = tmp_path / "profile.json"
    code = bench_main(["run", "--scenario", obs_scenario.id,
                       "--profile-json", str(profile_path), "--quiet"])
    assert code == 0
    data = json.loads(profile_path.read_text())
    units = data["profile"][obs_scenario.id]
    assert set(units) == {"verl:7B/16gpu", "laminar:7B/16gpu"}
    top = units["laminar:7B/16gpu"][0]
    assert set(top) == {"function", "calls", "tottime_s", "cumtime_s"}
    assert top["cumtime_s"] >= 0.0 and top["calls"] >= 1
    # --profile-json implies --profile, which implies --no-save: the BENCH
    # artifact must not have been written (profiled elapsed_s pollutes trend).
    assert not (tmp_path / default_artifact_path(obs_scenario.id, ".")).exists()


# --------------------------------------------------------------------------- run logging
def test_run_logger_json_lines():
    stream = io.StringIO()
    configure_logging(level="info", json_lines=True, stream=stream)
    try:
        get_run_logger("test.obs").info("hello_event", message="hello world",
                                        answer=42)
        record = json.loads(stream.getvalue().strip())
        assert record["event"] == "hello_event"
        assert record["message"] == "hello world"
        assert record["fields"]["answer"] == 42
        assert record["logger"] == "repro.test.obs"
    finally:
        configure_logging()


def test_run_logger_json_lines_one_object_per_line():
    stream = io.StringIO()
    configure_logging(level="debug", json_lines=True, stream=stream)
    try:
        log = get_run_logger("test.obs")
        log.debug("first", message="m1", x=1)
        log.info("second", message="m2", nested={"a": [1, 2]})
        log.warning("third", message="m3")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            record = json.loads(line)  # exactly one JSON object per line
            assert {"level", "logger", "event", "message"} <= set(record)
        records = [json.loads(line) for line in lines]
        assert [r["event"] for r in records] == ["first", "second", "third"]
        assert [r["level"] for r in records] == ["debug", "info", "warning"]
        assert records[1]["fields"]["nested"] == {"a": [1, 2]}
        assert "fields" not in records[2]  # empty fields stay off the record
    finally:
        configure_logging()


def test_cli_log_json_keeps_deliverables_plain(obs_scenario, capsys):
    assert bench_main(["run", "--scenario", obs_scenario.id,
                       "--no-save", "--log-json"]) == 0
    out = capsys.readouterr().out
    json_lines = []
    for line in out.splitlines():
        try:
            json_lines.append(json.loads(line))
        except ValueError:
            continue
    # Progress became JSON records with event + fields...
    events = {r["event"] for r in json_lines}
    assert "run_start" in events and "unit_done" in events
    assert all("fields" in r for r in json_lines
               if r["event"] in ("run_start", "unit_done"))
    # ...while the results table still prints as plain text.
    assert obs_scenario.id in out


def test_run_logger_quiet_suppresses_info_keeps_warnings():
    stream = io.StringIO()
    configure_logging(level="info", quiet=True, stream=stream)
    try:
        log = get_run_logger("test.obs")
        log.info("progress", message="should not appear")
        log.warning("warn_event", message="something is off")
        out = stream.getvalue()
        assert "should not appear" not in out
        assert "warning: something is off" in out
    finally:
        configure_logging()


def test_configure_logging_is_idempotent():
    configure_logging()
    configure_logging(level="debug")
    logger = logging.getLogger("repro")
    installed = [h for h in logger.handlers
                 if getattr(h, "_repro_runlog", False)]
    assert len(installed) == 1
    assert logger.level == logging.DEBUG
    configure_logging()


def test_cli_quiet_silences_progress_keeps_results(obs_scenario, capsys):
    assert bench_main(["run", "--scenario", obs_scenario.id,
                       "--no-save", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "running 1 scenario(s)" not in out and "[ok]" not in out
    assert obs_scenario.id in out  # the results table still prints


# --------------------------------------------------------------------------- satellite: timeline
def test_event_counter_series_rejects_decreasing_timestamps():
    series = EventCounterSeries("tokens")
    series.record(1.0, 5.0)
    series.record(1.0, 2.0)          # equal timestamps are fine
    series.record(2.0, 1.0)
    series.record(2.0 - 1e-12, 4.0)  # sub-epsilon jitter is fine
    with pytest.raises(ValueError):
        series.record(1.5, 3.0)
    assert series.total() == 12.0


def test_time_series_rejects_decreasing_timestamps():
    series = TimeSeries("util")
    series.record(0.0, 0.1)
    series.record(5.0, 0.9)
    with pytest.raises(ValueError):
        series.record(4.0, 0.5)

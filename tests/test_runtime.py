"""Tests for the shared repro.runtime layer: workload bundle, completion
pipeline, weight-sync components, the DES generation harness, and the
event-driven Laminar runtime."""

from dataclasses import replace

import numpy as np
import pytest

from repro.systems import LaminarSystem, VerlSynchronous, make_system
from repro.experiments import make_system_config
from repro.runtime import (
    CompletionPipeline,
    GlobalWeightSync,
    RelayWeightSync,
    WorkloadBundle,
)
from repro.sim import Environment


def quick_config(system, gpus=32, scale=1 / 32, iters=2, warm=0, task="math"):
    config = make_system_config(system, "7B", gpus, task_type=task).scaled(scale)
    return replace(config, num_iterations=iters, warmup_iterations=warm)


# --------------------------------------------------------------------------- workload bundle
def test_workload_bundle_seed_layout_is_deterministic():
    config = quick_config("verl")
    a = WorkloadBundle.from_config(config)
    b = WorkloadBundle.from_config(config)
    rng_a, rng_b = np.random.default_rng(config.seed + 3), a.rng
    prompts_a = a.dataset.sample_batch(8, a.rng)
    prompts_b = b.dataset.sample_batch(8, b.rng)
    assert [p.prompt_id for p in prompts_a] == [p.prompt_id for p in prompts_b]
    states_a = a.factory.make(prompts_a)
    states_b = b.factory.make(prompts_b)
    assert [s.schedule.total_tokens for s in states_a] == [
        s.schedule.total_tokens for s in states_b
    ]
    assert a.environment.score(states_a[0].trajectory) == b.environment.score(
        states_b[0].trajectory
    )
    del rng_a, rng_b


def test_systems_share_the_bundle_objects():
    """Baselines and Laminar must expose the bundle's objects, not copies."""
    baseline = VerlSynchronous(quick_config("verl"))
    assert baseline.dataset is baseline.workload.dataset
    assert baseline.trainer is baseline.workload.trainer
    assert baseline.decode_model is baseline.workload.decode_model
    laminar = LaminarSystem(quick_config("laminar"))
    assert laminar.dataset is laminar.workload.dataset
    assert laminar.relay is laminar.weight_sync.relay


def test_completion_pipeline_orders_scoring_like_direct_calls():
    config = quick_config("verl")
    a = WorkloadBundle.from_config(config)
    b = WorkloadBundle.from_config(config)
    states = a.factory.make(a.dataset.sample_batch(6, a.rng))
    twin_states = b.factory.make(b.dataset.sample_batch(6, b.rng))
    for s, t in zip(states, twin_states):
        s.trajectory.advance(s.schedule.total_tokens, 0)
        t.trajectory.advance(t.schedule.total_tokens, 0)
    pipeline = CompletionPipeline(environment=a.environment, buffer=a.buffer)
    pipeline.process([s.trajectory for s in states], actor_version=0)
    rewards_direct = [b.environment.score(t.trajectory) for t in twin_states]
    assert [exp.reward for exp in a.buffer.peek_all()] == rewards_direct


# --------------------------------------------------------------------------- weight sync
def test_weight_sync_components_expose_one_surface():
    config = quick_config("one_step")
    model = config.model()
    global_sync = GlobalWeightSync.from_config(config, model)
    assert global_sync.sync_time() > 0
    # Fig 14's claim is about the rollout side: a replica's relay pull waits
    # far less than the blocking global sync that couples every rollout.
    big = make_system_config("laminar", "32B", 512)
    big_model = big.model()
    relay_sync = RelayWeightSync.from_config(big, big_model)
    assert relay_sync.sync_time() > 0
    pull_wait = relay_sync.pull(machine_id=0, time=0.0).wait_time
    assert pull_wait < GlobalWeightSync.from_config(big, big_model).sync_time()
    publication = relay_sync.publish(1, time=10.0)
    assert publication.actor_stall == pytest.approx(relay_sync.sync_time())
    pull = relay_sync.pull(0, publication.broadcast_complete_at + 1.0)
    assert pull.version == 1


# --------------------------------------------------------------------------- generation harness
def test_generation_barrier_matches_serial_run_to_completion():
    """The AllOf-joined replica processes must reproduce the serial reference
    (per-replica run_to_completion) bit for bit: same durations, same
    trajectories, same completion timestamps, same token counts."""
    des = VerlSynchronous(quick_config("verl", scale=1 / 16))
    outcome = des.generate_full_batch(weight_version=0)

    twin = VerlSynchronous(quick_config("verl", scale=1 / 16))
    states = twin.sample_batch_states(0)
    replicas = twin.make_replicas(twin.num_generation_replicas(), 0)
    for index, state in enumerate(states):
        replicas[index % len(replicas)].add_sequences([state])
    reference_durations, reference_trajectories = [], []
    for replica in replicas:
        duration, completed = replica.run_to_completion()
        reference_durations.append(duration)
        reference_trajectories.extend(completed)

    assert outcome.per_replica_time == reference_durations
    assert outcome.duration == max(reference_durations)
    assert [t.traj_id for t in outcome.trajectories] == [
        t.traj_id for t in reference_trajectories
    ]
    assert [t.finish_time for t in outcome.trajectories] == [
        t.finish_time for t in reference_trajectories
    ]
    assert outcome.tokens_generated == sum(r.stats.tokens_generated for r in replicas)


def test_generation_barrier_is_reusable_within_one_environment():
    system = VerlSynchronous(quick_config("verl"))
    env = Environment()

    def driver():
        outcome_a = yield from system.generate_batch_process(env, 0)
        outcome_b = yield from system.generate_batch_process(env, 0)
        return outcome_a, outcome_b

    process = env.process(driver())
    outcome_a, outcome_b = env.run(until=process)
    # Both batches completed; the environment clock covers both barriers.
    assert outcome_a.duration > 0 and outcome_b.duration > 0
    assert env.now == pytest.approx(outcome_a.duration + outcome_b.duration, rel=1e-6)


# --------------------------------------------------------------------------- event-driven systems
def test_all_five_systems_run_on_the_event_engine():
    for name in ("verl", "one_step", "stream_gen", "areal"):
        result = make_system(quick_config(name)).run()
        assert len(result.iterations) == 2, name
        assert result.wall_clock > 0, name
    result = LaminarSystem(quick_config("laminar")).run()
    assert len(result.iterations) == 2
    assert result.wall_clock > 0


def test_laminar_trainer_timestamps_are_exact_not_round_aligned():
    """Iteration completions must not be multiples of the old 1 ms round
    floor or of the repack interval: they land on exact event times
    (trainer compute end + actor push stall)."""
    system = LaminarSystem(quick_config("laminar", iters=3))
    result = system.run()
    for record in result.iterations:
        remainder = record.end_time % system.config.repack_interval
        assert min(remainder, system.config.repack_interval - remainder) > 1e-6
    # End times are strictly increasing and strictly positive.
    ends = [r.end_time for r in result.iterations]
    assert ends == sorted(ends) and ends[0] > 0


def test_laminar_event_driven_run_matches_legacy_behaviour_envelope():
    """Sanity envelope on the ported main loop: run-ahead cap respected,
    replicas stay busy, staleness stays small, weights advance."""
    system = LaminarSystem(quick_config("laminar", iters=4, warm=1))
    result = system.run()
    assert len(result.iterations) == 4
    assert system.trainer.weight_version == 4
    assert result.extras["max_inherent_staleness"] <= 8
    assert result.throughput(1) > 0
    # The relay saw every published version.
    assert system.relay.latest_version() == 4
    # Every trajectory was generated by exactly one policy version.
    assert all(not exp.trajectory.mixed_versions for exp in system.buffer.peek_all())


def test_areal_event_driven_continuous_generation():
    system = make_system(quick_config("areal", iters=3))
    result = system.run()
    assert len(result.iterations) == 3
    assert result.extras["total_reprefill_stall"] > 0
    # Batches become ready at exact completion timestamps: iteration ends are
    # strictly increasing and not multiples of any round length.
    ends = [r.end_time for r in result.iterations]
    assert ends == sorted(ends)
    assert any(e % 20.0 > 1e-6 for e in ends)  # the old 20 s round is gone

"""Tests for the repro.systems registry: integrity against the bench scenario
catalog, registration error paths, the pure event-time clock rewrite of the
pipelined baselines (clock equivalence vs the legacy closed-form stage
arithmetic), and the two composed variants (laminar_norepack, semi_sync)."""

import json
import os
from dataclasses import replace

import pytest

from repro.bench.registry import all_scenarios
from repro.experiments import make_system_config, placement_for, rollout_tensor_parallel
from repro.sim import Environment, SimulationError
from repro.systems import (
    LaminarNoRepack,
    LaminarSystem,
    SemiSyncBarrier,
    System,
    SystemCapabilities,
    SystemRegistryError,
    available_systems,
    get_system_class,
    make_system,
    register_system,
    system_capabilities,
    unregister_system,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def quick_config(system, gpus=32, scale=1 / 32, iters=2, warm=0, task="math"):
    config = make_system_config(system, "7B", gpus, task_type=task).scaled(scale)
    return replace(config, num_iterations=iters, warmup_iterations=warm)


# --------------------------------------------------------------------------- registry integrity
def test_every_bench_scenario_resolves_to_a_registered_system():
    """The bench catalog and the system registry must never drift apart:
    every scenario's systems resolve, with placements for every grid point."""
    for scenario in all_scenarios():
        for system in scenario.systems:
            cls = get_system_class(system)
            assert cls.name == system
            assert isinstance(cls.capabilities, SystemCapabilities)
            for gpus in scenario.gpu_scales:
                assert placement_for(system, scenario.model_size, gpus)
                assert rollout_tensor_parallel(system, scenario.model_size) >= 1


def test_registry_holds_all_seven_orchestrations():
    names = available_systems()
    assert set(names) >= {
        "verl", "one_step", "stream_gen", "areal", "laminar",
        "laminar_norepack", "semi_sync",
    }


def test_duplicate_registration_raises_with_clear_message():
    class Duplicate(System):
        name = "verl"

        def build(self, env, result, num_iterations):
            yield env.timeout(0.0)

    with pytest.raises(SystemRegistryError, match="already registered"):
        register_system(Duplicate)


def test_unknown_system_lookup_lists_registered_names():
    with pytest.raises(SystemRegistryError, match="registered systems:.*laminar"):
        get_system_class("nope")
    with pytest.raises(ValueError, match="registered systems:"):
        make_system_config("nope", "7B", 64)


def test_register_and_unregister_round_trip():
    class Scratch(System):
        name = "scratch_test_system"
        capabilities = SystemCapabilities(description="test-only",
                                          placement_like="verl")

        def build(self, env, result, num_iterations):
            yield env.timeout(0.0)

    try:
        register_system(Scratch)
        assert get_system_class("scratch_test_system") is Scratch
        assert system_capabilities("scratch_test_system").placement_like == "verl"
        # Variants inherit their base system's Table 2 placements.
        assert placement_for("scratch_test_system", "7B", 64) == \
            placement_for("verl", "7B", 64)
    finally:
        unregister_system("scratch_test_system")
    with pytest.raises(SystemRegistryError):
        get_system_class("scratch_test_system")


# --------------------------------------------------------------------------- engine primitive
def test_timeout_until_fires_at_exact_absolute_time():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(0.1)
        yield env.timeout_until(0.5)
        seen.append(env.now)
        yield env.timeout_until(env.now)  # same-instant wake is legal
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [0.5, 0.5]
    with pytest.raises(SimulationError):
        env.timeout_until(0.25)  # lies in the past


# --------------------------------------------------------------------------- clock equivalence
def test_one_step_event_clock_matches_closed_form_stage_arithmetic():
    """The AllOf-joined (generation, training) processes plus the sync
    timeout must land on exactly the float the legacy closed-form padding
    computed: fl(fl(start + max(train, generation)) + sync)."""
    result = make_system(quick_config("one_step", iters=3, warm=0)).run()
    sync = result.extras["global_sync_time"]
    for record, breakdown in zip(result.iterations, result.breakdowns):
        stage = max(breakdown.training_time, breakdown.generation_time)
        assert record.end_time == (record.start_time + stage) + sync


def test_stream_gen_event_clock_matches_closed_form_recurrence():
    """The streaming trainer's event-driven mini-batch pipeline must equal
    the legacy offline recurrence: mini-batch j starts at
    max(previous end, completion of the (j+1)*m-th trajectory)."""
    config = quick_config("stream_gen", iters=1, warm=0)
    result = make_system(config).run()

    # Twin: reproduce iteration 1's generation outcome (same seeds) and fold
    # the legacy closed-form recurrence over its completion times.
    twin = make_system(config)
    outcome = twin.generate_full_batch(weight_version=0)
    sync = result.extras["global_sync_time"]
    num_minibatches = config.num_minibatches
    minibatch_trajs = config.global_batch_size // num_minibatches
    completion_times = sorted(t.finish_time for t in outcome.trajectories)
    tokens_by_completion = [
        t.total_tokens
        for t in sorted(outcome.trajectories, key=lambda t: t.finish_time)
    ]
    cursor = 0.0
    for j in range(num_minibatches):
        ready_index = min(len(completion_times), (j + 1) * minibatch_trajs) - 1
        mb_tokens = sum(
            tokens_by_completion[j * minibatch_trajs:(j + 1) * minibatch_trajs]
        )
        cursor = max(cursor, completion_times[ready_index]) + \
            twin.trainer.minibatch_time(mb_tokens)
    assert result.iterations[0].start_time == 0.0
    assert result.iterations[0].end_time == 0.0 + (cursor + sync)


def test_pipelined_iteration_is_allof_join_not_sum_of_stages():
    """Sanity: the one-step iteration hides the shorter stage (max, not sum)."""
    result = make_system(quick_config("one_step", iters=3, warm=1)).run()
    sync = result.extras["global_sync_time"]
    for record, breakdown in zip(result.iterations[1:], result.breakdowns[1:]):
        assert record.duration == pytest.approx(
            max(breakdown.training_time, breakdown.generation_time) + sync
        )
        assert record.duration < (
            breakdown.training_time + breakdown.generation_time + sync
        ) or min(breakdown.training_time, breakdown.generation_time) == 0.0


# --------------------------------------------------------------------------- laminar_norepack
def test_laminar_norepack_disables_every_repack_trigger():
    system = make_system(quick_config("laminar_norepack", iters=2))
    assert isinstance(system, LaminarNoRepack)
    assert system.manager.repack_interval == float("inf")
    assert system.manager.executor.plan_overhead == 0.0
    result = system.run()
    assert result.extras["repacks"] == 0.0
    assert result.extras["repack_overhead_total"] == 0.0
    assert not system.config.repack_enabled


def test_laminar_norepack_gain_cross_checks_fig16_ablation():
    """The registry variant must reproduce the Fig 16 repack gain: the fleet
    generation-rate ratio between laminar and laminar_norepack at the same
    seed equals the committed repack_ablation_32b throughput_gain."""
    from repro.experiments.throughput import measure_laminar

    with_repack = measure_laminar(make_system_config("laminar", "32B", 128))
    without = measure_laminar(make_system_config("laminar_norepack", "32B", 128))
    assert without.details["fleet_generation_rate"] > 0
    gain = (with_repack.details["fleet_generation_rate"]
            / without.details["fleet_generation_rate"])
    committed = json.load(
        open(os.path.join(REPO_ROOT, "BENCH_repack_ablation_32b.json"))
    )
    unit = committed["scenarios"]["repack_ablation_32b"]["result"]["units"][0]
    assert gain == pytest.approx(unit["metrics"]["throughput_gain"], rel=1e-6)


# --------------------------------------------------------------------------- semi_sync
def test_semi_sync_respects_staleness_window_and_runs():
    config = quick_config("semi_sync", iters=3, warm=0)
    assert config.staleness_bound == 2
    system = make_system(config)
    assert isinstance(system, SemiSyncBarrier)
    result = system.run()
    assert len(result.iterations) == 3
    assert result.extras["staleness_window"] == 2.0
    assert result.max_staleness() <= config.staleness_bound
    assert result.throughput(0) > 0


def test_semi_sync_window_one_degenerates_toward_one_step():
    """With a window of one batch the hybrid's schedule is the one-step
    pipeline's: same barrier, same sync, staleness capped at one, and the
    steady-state iteration is the same AllOf-joined max(train, generation)
    plus the blocking sync (the batches themselves are iid draws, so the
    durations agree only statistically)."""
    config = replace(quick_config("semi_sync", iters=3, warm=0), staleness_bound=1)
    result = make_system(config).run()
    assert result.max_staleness() <= 1
    one_step = make_system(
        replace(quick_config("one_step", iters=3, warm=0), staleness_bound=1)
    ).run()
    assert result.iterations[-1].duration == pytest.approx(
        one_step.iterations[-1].duration, rel=0.15
    )


def test_laminar_requires_disaggregated_placement():
    config = quick_config("verl")  # colocated: rollout_gpus == 0
    config = replace(config, system="laminar")
    with pytest.raises(ValueError, match="disaggregated"):
        LaminarSystem(config)

"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms import group_normalized_advantages
from repro.data import ExperienceBuffer
from repro.llm import DecodeModel, QWEN_7B, QWEN_32B
from repro.rollout import ReplicaGenerationState, RolloutReplicaConfig, SequenceState, TurnSchedule
from repro.sim import KVCache, KVCacheConfig, KVCacheError
from repro.sim.network import (
    RDMA_LINK,
    chain_pipelined_broadcast_time,
    optimal_chain_broadcast_time,
)
from repro.types import Prompt, Trajectory


# --------------------------------------------------------------------------- KVCache
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 15), st.integers(1, 400), st.integers(0, 400)),
        min_size=1, max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_kvcache_accounting_invariants(ops):
    """used + free == total, utilisation in [0,1], blocks consistent with tokens."""
    cache = KVCache(KVCacheConfig(total_blocks=200, block_size=16))
    live = {}
    for seq_id, alloc_tokens, grow_tokens in ops:
        if seq_id in live:
            try:
                cache.append_tokens(seq_id, grow_tokens)
                live[seq_id] += grow_tokens
            except KVCacheError:
                cache.free(seq_id)
                del live[seq_id]
        else:
            if cache.can_allocate(alloc_tokens):
                cache.allocate(seq_id, alloc_tokens)
                live[seq_id] = alloc_tokens
        assert cache.used_blocks + cache.free_blocks == cache.config.total_blocks
        assert 0.0 <= cache.utilization <= 1.0
        expected_blocks = sum(-(-tokens // 16) for tokens in live.values() if tokens > 0)
        assert cache.used_blocks == expected_blocks


# --------------------------------------------------------------------------- broadcast model
@given(
    nbytes=st.floats(1e6, 5e11),
    nodes=st.integers(2, 512),
    chunks=st.integers(1, 4096),
)
@settings(max_examples=100, deadline=None)
def test_chain_broadcast_optimal_k_is_a_lower_bound(nbytes, nodes, chunks):
    t_any = chain_pipelined_broadcast_time(nbytes, nodes, chunks)
    t_opt = chain_pipelined_broadcast_time(nbytes, nodes)  # k = k*
    t_star = optimal_chain_broadcast_time(nbytes, nodes)
    assert t_any >= t_star - 1e-9
    assert t_opt <= t_any * (1.0 + 1e-9) or math.isclose(t_opt, t_any, rel_tol=1e-6)
    # Bandwidth lower bound: you can never beat a single serialization of M bytes.
    assert t_any >= nbytes / RDMA_LINK.bandwidth - 1e-12


@given(nodes=st.integers(2, 256))
@settings(max_examples=40, deadline=None)
def test_broadcast_time_weakly_monotone_in_nodes(nodes):
    small = optimal_chain_broadcast_time(QWEN_32B.weight_bytes, nodes)
    bigger = optimal_chain_broadcast_time(QWEN_32B.weight_bytes, nodes + 1)
    assert bigger >= small - 1e-9


# --------------------------------------------------------------------------- decode roofline
@given(batch=st.integers(1, 1024), context=st.integers(1, 16384), tp=st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=100, deadline=None)
def test_decode_step_time_monotonicity(batch, context, tp):
    decode = DecodeModel(QWEN_7B, tensor_parallel=tp)
    base = decode.decode_step_time(batch, context)
    assert base > 0
    assert decode.decode_step_time(batch + 1, context) >= base - 1e-12
    assert decode.decode_step_time(batch, context + 128) >= base - 1e-12


# --------------------------------------------------------------------------- GRPO advantages
@given(
    groups=st.integers(1, 16),
    group_size=st.integers(2, 16),
    seed=st.integers(0, 1000),
)
@settings(max_examples=60, deadline=None)
def test_group_advantages_are_centered_and_bounded(groups, group_size, seed):
    rng = np.random.default_rng(seed)
    rewards = rng.choice([-1.0, 1.0], size=groups * group_size)
    advantages = group_normalized_advantages(rewards, group_size)
    per_group = advantages.reshape(groups, group_size)
    assert np.allclose(per_group.mean(axis=1), 0.0, atol=1e-7)
    # Standardised ±1 rewards can never exceed sqrt(group_size) in magnitude.
    assert np.all(np.abs(advantages) <= math.sqrt(group_size) + 1e-6)


# --------------------------------------------------------------------------- experience buffer
@given(
    writes=st.integers(1, 60),
    capacity=st.integers(1, 40),
    batch=st.integers(1, 20),
)
@settings(max_examples=60, deadline=None)
def test_experience_buffer_never_exceeds_capacity(writes, capacity, batch):
    buffer = ExperienceBuffer(capacity=capacity)
    prompt = Prompt(prompt_id=0, group_id=0, prompt_tokens=8)
    for i in range(writes):
        trajectory = Trajectory(traj_id=i, prompt=prompt, target_tokens=4)
        trajectory.advance(4, 0)
        buffer.write(trajectory, reward=1.0, actor_version=0)
        assert len(buffer) <= capacity
    if buffer.can_sample(batch):
        sampled = buffer.sample(batch)
        assert len(sampled) == batch
        assert len({exp.trajectory.traj_id for exp in sampled}) == batch


# --------------------------------------------------------------------------- generation engine
@given(
    lengths=st.lists(st.integers(8, 600), min_size=1, max_size=12),
    window=st.floats(0.05, 3.0),
)
@settings(max_examples=30, deadline=None)
def test_generation_conserves_tokens_under_arbitrary_windows(lengths, window):
    """However the caller slices time, every target token is generated exactly once."""
    config = RolloutReplicaConfig(QWEN_7B, tensor_parallel=1, max_concurrency=64)
    replica = ReplicaGenerationState(
        replica_id=0,
        decode_model=config.decode_model(),
        kvcache_config=KVCacheConfig(total_blocks=4096),
        max_concurrency=64,
    )
    states = []
    for i, length in enumerate(lengths):
        prompt = Prompt(prompt_id=i, group_id=0, prompt_tokens=32)
        trajectory = Trajectory(traj_id=i, prompt=prompt, target_tokens=length)
        states.append(SequenceState(trajectory=trajectory, schedule=TurnSchedule.single_turn(length)))
    replica.add_sequences(states)
    completed = []
    guard = 0
    while not replica.is_idle and guard < 100_000:
        completed.extend(replica.advance(window))
        guard += 1
    assert len(completed) == len(lengths)
    assert replica.stats.tokens_generated == sum(lengths)
    assert replica.kvcache.used_blocks == 0
    for trajectory in completed:
        assert trajectory.generated_tokens == trajectory.target_tokens
        assert trajectory.finish_time is not None

"""Tests for the PR-3 bench additions: broadcast-latency scenario kind,
``repro-bench trend`` history reporting, ``--profile`` hot-path capture and
the ``--budget`` wall-clock gate."""

import json

import pytest

from repro.bench.cli import main as bench_main
from repro.bench.compare import VERDICT_IMPROVEMENT, VERDICT_REGRESSION, judge_unit
from repro.bench.registry import ScenarioConfig, get_scenario, register_scenario, unregister_scenario
from repro.bench.runner import (
    PRIMARY_METRICS,
    UnitResult,
    execute_unit,
    execute_unit_profiled,
    run_scenarios,
)
from repro.bench.store import save_artifact
from repro.bench.trend import (
    RunSnapshot,
    collect_history,
    largest_step,
    metric_series,
    render_bisect,
    render_trend,
    scenario_trends,
    sparkline,
)
from repro.bench.runner import ScenarioResult


@pytest.fixture
def cheap_scenario():
    scenario = register_scenario(ScenarioConfig(
        id="features_test_scenario",
        description="test-only",
        kind="weight_sync",
        systems=("laminar",),
        model_size="32B",
        gpu_scales=(128,),
        iterations=1,
        warmup=0,
        timeout_s=60.0,
        tags=("test-only",),
    ))
    yield scenario
    unregister_scenario(scenario.id)


# --------------------------------------------------------------------------- broadcast latency
def test_broadcast_latency_scenario_is_registered_and_smoke_gated():
    scenario = get_scenario("broadcast_latency")
    assert scenario.kind == "broadcast_latency"
    assert "smoke" in scenario.tags and "fig18" in scenario.tags
    assert scenario.kind in PRIMARY_METRICS


def test_broadcast_latency_unit_reports_fig18_series():
    unit = get_scenario("broadcast_latency").expand()[0]
    result = execute_unit(unit)
    assert result.status == "ok", result.error
    metrics = result.metrics
    # The Fig 18 series: latency grows (weakly) with the machine count.
    series = sorted(
        (int(k.split("_m")[-1]), v)
        for k, v in metrics.items()
        if k.startswith("broadcast_s_m")
    )
    assert len(series) >= 4
    latencies = [latency for _, latency in series]
    assert all(b >= a - 1e-9 for a, b in zip(latencies, latencies[1:]))
    assert metrics["broadcast_s_at_max_scale"] == latencies[-1]
    # Appendix D decomposition adds up to more than the bandwidth floor.
    assert metrics["bandwidth_term_s"] > 0
    assert metrics["optimal_chunks_at_max_scale"] >= 1
    # The chain broadcast beats the blocking GPU-direct sync at scale.
    assert metrics["speedup_vs_gpu_direct_at_max_scale"] > 1.0


def test_broadcast_latency_gate_treats_lower_as_better():
    unit = get_scenario("broadcast_latency").expand()[0]
    base = execute_unit(unit)
    slower = UnitResult(
        scenario_id=base.scenario_id, system=base.system,
        model_size=base.model_size, total_gpus=base.total_gpus,
        variant=base.variant, seed=base.seed,
        metrics={"broadcast_s_at_max_scale":
                 base.metrics["broadcast_s_at_max_scale"] * 2.0},
    )
    verdict = judge_unit("broadcast_latency", base, slower, tolerance=0.05)
    assert verdict.verdict == VERDICT_REGRESSION
    faster = UnitResult(
        scenario_id=base.scenario_id, system=base.system,
        model_size=base.model_size, total_gpus=base.total_gpus,
        variant=base.variant, seed=base.seed,
        metrics={"broadcast_s_at_max_scale":
                 base.metrics["broadcast_s_at_max_scale"] * 0.5},
    )
    assert judge_unit("broadcast_latency", base, faster, 0.05).verdict == VERDICT_IMPROVEMENT


# --------------------------------------------------------------------------- sparklines / trend
def test_sparkline_scales_and_handles_gaps():
    line = sparkline([1.0, None, 2.0, 3.0])
    assert len(line) == 4
    assert line[0] == "▁" and line[1] == " " and line[3] == "█"
    assert sparkline([]) == ""
    assert sparkline([None, None]) == "  "
    flat = sparkline([2.0, 2.0])
    assert len(set(flat)) == 1  # constant series renders one level


def _snapshot(rev, created, scenario_id, value, elapsed):
    return RunSnapshot(
        path="x.json", git_rev=rev, created_at=created,
        results=[ScenarioResult(
            scenario_id=scenario_id, kind="weight_sync",
            units=[UnitResult(
                scenario_id=scenario_id, system="laminar", model_size="32B",
                total_gpus=128, variant="", seed=0,
                metrics={"relay_speedup_vs_gpu_direct": value},
            )],
            elapsed_s=elapsed,
        )],
    )


def test_scenario_trends_orders_runs_and_tracks_elapsed():
    snapshots = [
        _snapshot("aaa", "2026-01-01T00:00:00", "ws", 1.5, 10.0),
        _snapshot("bbb", "2026-02-01T00:00:00", "ws", 1.8, 4.0),
    ]
    trends = scenario_trends(snapshots)
    assert set(trends) == {"ws"}
    _, series_list = trends["ws"]
    by_label = {s.label: s for s in series_list}
    assert by_label["elapsed_s"].values == [10.0, 4.0]
    assert by_label["laminar:32B/128gpu"].values == [1.5, 1.8]
    assert by_label["elapsed_s"].delta_pct() == pytest.approx(-60.0)
    rendered = render_trend(snapshots)
    assert "elapsed_s" in rendered and "ws [weight_sync]" in rendered


def test_collect_history_merges_same_revision_and_skips_git(tmp_path, cheap_scenario):
    results = run_scenarios([cheap_scenario])
    path_a = tmp_path / "BENCH_a.json"
    path_b = tmp_path / "BENCH_b.json"
    save_artifact(results, str(path_a), configs=[cheap_scenario])
    save_artifact(results, str(path_b), configs=[cheap_scenario])
    # Same git revision in both files -> one merged run snapshot.
    snapshots = collect_history([str(path_a), str(path_b)], include_git_history=False)
    assert len(snapshots) == 1
    assert {r.scenario_id for r in snapshots[0].results} == {cheap_scenario.id}
    # A corrupt artifact is skipped, not fatal.
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{not json")
    assert len(collect_history([str(path_a), str(bad)], include_git_history=False)) == 1


def test_cli_trend_renders_history(tmp_path, cheap_scenario, capsys, monkeypatch):
    results = run_scenarios([cheap_scenario])
    save_artifact(results, str(tmp_path / "BENCH_t.json"), configs=[cheap_scenario])
    monkeypatch.chdir(tmp_path)
    code = bench_main(["trend", "--no-git-history"])
    out = capsys.readouterr().out
    assert code == 0
    assert "run(s)" in out and cheap_scenario.id in out


def test_cli_trend_without_artifacts_errors(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert bench_main(["trend", "--no-git-history"]) == 1


def test_cli_trend_scenario_without_history_reports_cleanly(
    tmp_path, cheap_scenario, capsys, monkeypatch
):
    """A registered scenario with no committed artifact versions is a normal
    state (e.g. freshly added), so a filtered trend reports it and exits 0."""
    results = run_scenarios([cheap_scenario])
    save_artifact(results, str(tmp_path / "BENCH_t.json"), configs=[cheap_scenario])
    monkeypatch.chdir(tmp_path)
    code = bench_main(["trend", "--no-git-history",
                       "--scenario", "datacenter_1k"])
    out = capsys.readouterr().out
    assert code == 0
    assert "no history" in out and "datacenter_1k" in out


def test_cli_trend_tolerates_retired_scenarios(tmp_path, capsys, monkeypatch):
    """Artifacts outlive the registry: a renamed/retired scenario's history
    must still trend (formerly a KeyError), and a pattern matching nothing
    anywhere is noted and skipped rather than failing the whole report."""
    scenario = register_scenario(ScenarioConfig(
        id="retired_trend_scenario",
        description="test-only",
        kind="weight_sync",
        systems=("laminar",),
        model_size="32B",
        gpu_scales=(128,),
        iterations=1,
        warmup=0,
        timeout_s=60.0,
        tags=("test-only",),
    ))
    try:
        results = run_scenarios([scenario])
        save_artifact(results, str(tmp_path / "BENCH_retired.json"),
                      configs=[scenario])
    finally:
        unregister_scenario(scenario.id)
    monkeypatch.chdir(tmp_path)

    # Unfiltered: the retired scenario's history renders from the artifact.
    assert bench_main(["trend", "--no-git-history"]) == 0
    assert "retired_trend_scenario" in capsys.readouterr().out

    # Filtered by the retired id: resolves against the history ids.
    assert bench_main(["trend", "--no-git-history",
                       "--scenario", "retired_trend_scenario"]) == 0
    assert "retired_trend_scenario" in capsys.readouterr().out

    # An unknown pattern alongside a real one: noted and skipped.
    assert bench_main(["trend", "--no-git-history",
                       "--scenario", "retired_trend_scenario",
                       "--scenario", "no_such_scenario_xyz"]) == 0
    out = capsys.readouterr().out
    assert "no_such_scenario_xyz" in out and "skipping" in out
    assert "retired_trend_scenario" in out

    # Only unknown patterns: clean empty report, exit 0.
    assert bench_main(["trend", "--no-git-history",
                       "--scenario", "no_such_scenario_xyz"]) == 0
    assert "no history" in capsys.readouterr().out


# --------------------------------------------------------------------------- bisect
def test_largest_step_finds_the_biggest_move_and_its_revisions():
    snapshots = [
        _snapshot("aaa", "2026-01-01T00:00:00", "ws", 1.5, 10.0),
        _snapshot("bbb", "2026-02-01T00:00:00", "ws", 1.6, 9.0),
        _snapshot("ccc", "2026-03-01T00:00:00", "ws", 3.2, 2.0),  # the jump
        _snapshot("ddd", "2026-04-01T00:00:00", "ws", 3.3, 2.1),
    ]
    step = largest_step(snapshots, "ws", "relay_speedup_vs_gpu_direct")
    assert step is not None
    assert (step.from_rev, step.to_rev) == ("bbb", "ccc")
    assert step.before == 1.6 and step.after == 3.2
    assert step.rel_change == pytest.approx(1.0)
    # elapsed_s is addressable as a pseudo-metric of the scenario itself.
    elapsed = largest_step(snapshots, "ws", "elapsed_s")
    assert (elapsed.from_rev, elapsed.to_rev) == ("bbb", "ccc")
    assert elapsed.series_label == "elapsed_s"
    rendered = render_bisect(step, ["ccc fix the thing"])
    assert "bbb" in rendered and "ccc" in rendered and "+100.0%" in rendered


def test_largest_step_skips_gaps_and_handles_missing_history():
    snapshots = [
        _snapshot("aaa", "2026-01-01T00:00:00", "ws", 1.0, 1.0),
        _snapshot("bbb", "2026-02-01T00:00:00", "other", 9.0, 1.0),  # gap for ws
        _snapshot("ccc", "2026-03-01T00:00:00", "ws", 2.0, 1.0),
    ]
    step = largest_step(snapshots, "ws", "relay_speedup_vs_gpu_direct")
    # The gap run is skipped over: the step spans aaa -> ccc.
    assert (step.from_rev, step.to_rev) == ("aaa", "ccc")
    assert largest_step(snapshots, "ws", "no_such_metric") is None
    assert largest_step([], "ws", "elapsed_s") is None
    assert "fewer than two" in render_bisect(None, [])
    series = metric_series(snapshots, "ws", "relay_speedup_vs_gpu_direct")
    assert series["laminar:32B/128gpu"] == [1.0, None, 2.0]


def test_cli_trend_bisect(tmp_path, cheap_scenario, capsys, monkeypatch):
    results = run_scenarios([cheap_scenario])
    path = tmp_path / "BENCH_t.json"
    save_artifact(results, str(path), configs=[cheap_scenario])
    # Second, degraded run under a different fake revision.
    import json as _json
    payload = _json.loads(path.read_text())
    payload["git_rev"] = "0000000"
    payload["created_at"] = "2099-01-01T00:00:00+00:00"
    entry = payload["scenarios"][cheap_scenario.id]["result"]
    for unit in entry["units"]:
        unit["metrics"]["relay_speedup_vs_gpu_direct"] *= 2.0
    degraded = tmp_path / "BENCH_t2.json"
    degraded.write_text(_json.dumps(payload))
    monkeypatch.chdir(tmp_path)
    code = bench_main(["trend", "--no-git-history", "--bisect", cheap_scenario.id,
                       "relay_speedup_vs_gpu_direct", "BENCH_t.json", "BENCH_t2.json"])
    out = capsys.readouterr().out
    assert code == 0
    assert "largest step" in out and "+100.0%" in out and "0000000" in out
    # Unknown metric: explicit failure, not a silent empty report.
    assert bench_main(["trend", "--no-git-history", "--bisect", cheap_scenario.id,
                       "nope_metric", "BENCH_t.json", "BENCH_t2.json"]) == 1
    capsys.readouterr()
    # A flat, fully-observed metric is healthy (exit 0), not "missing data".
    flat = _json.loads(path.read_text())
    flat["git_rev"] = "1111111"
    flat["created_at"] = "2099-02-01T00:00:00+00:00"
    (tmp_path / "BENCH_t3.json").write_text(_json.dumps(flat))
    code = bench_main(["trend", "--no-git-history", "--bisect", cheap_scenario.id,
                       "relay_speedup_vs_gpu_direct", "BENCH_t.json", "BENCH_t3.json"])
    out = capsys.readouterr().out
    assert code == 0 and "flat" in out


# --------------------------------------------------------------------------- profiling
def test_execute_unit_profiled_attaches_report(cheap_scenario):
    unit = cheap_scenario.expand()[0]
    result = execute_unit_profiled(unit, top=10)
    assert result.status == "ok", result.error
    assert "cumulative" in result.profile_text
    # The profile never leaks into the persisted artifact payload.
    assert "profile_text" not in result.as_dict()


def test_run_scenarios_profile_top_forces_serial(cheap_scenario):
    results = run_scenarios([cheap_scenario], jobs=4, profile_top=5)
    assert all(u.profile_text for r in results for u in r.units)
    with pytest.raises(ValueError):
        run_scenarios([cheap_scenario], profile_top=0)


def test_cli_run_profile_prints_hot_paths(cheap_scenario, capsys):
    code = bench_main([
        "run", "--scenario", cheap_scenario.id, "--no-save", "--profile", "5",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "--- profile:" in out and "cumulative" in out


# --------------------------------------------------------------------------- wall-clock budget
def test_cli_run_budget_gate(cheap_scenario, capsys):
    ok = bench_main([
        "run", "--scenario", cheap_scenario.id, "--no-save", "--budget", "300",
    ])
    assert ok == 0
    assert "within" in capsys.readouterr().out
    failed = bench_main([
        "run", "--scenario", cheap_scenario.id, "--no-save", "--budget", "0.000001",
    ])
    out = capsys.readouterr().out
    assert failed == 1
    assert "EXCEEDED" in out


# --------------------------------------------------------------------------- true bisection
def _step(before=1.0, after=2.0):
    from repro.bench.trend import MetricStep

    return MetricStep(
        scenario_id="s", series_label="laminar:32B/128gpu",
        metric="relay_speedup_vs_gpu_direct", before=before, after=after,
        from_rev="aaa0000", to_rev="fff0000",
        from_created="2099-01-01", to_created="2099-02-01",
    )


def test_bisect_commits_tightens_range_to_single_commit():
    from repro.bench.trend import bisect_commits

    # Newest first, like `git log --oneline from..to`; the regression landed
    # in commit c3.
    commits = [f"c{i} subject {i}" for i in (5, 4, 3, 2, 1)]
    values = {"c1": 1.0, "c2": 1.0, "c3": 2.0, "c4": 2.0, "c5": 2.0}
    runs = []

    def run_metric(revision):
        runs.append(revision)
        return values[revision]

    outcome = bisect_commits(_step(), commits, run_metric)
    assert outcome.culprit == "c3 subject 3"
    # True bisection: log2(5) ~ 2-3 re-runs, not a linear scan.
    assert 1 <= len(runs) <= 3
    assert [r for r, _ in outcome.tested] == runs


def test_bisect_commits_single_commit_range_needs_no_reruns():
    from repro.bench.trend import bisect_commits

    outcome = bisect_commits(_step(), ["c9 the only one"], lambda rev: 0.0)
    assert outcome.culprit == "c9 the only one"
    assert outcome.tested == []


def test_bisect_commits_falls_back_when_a_midpoint_cannot_run():
    from repro.bench.trend import bisect_commits, render_bisect

    commits = [f"c{i} s" for i in (4, 3, 2, 1)]
    outcome = bisect_commits(_step(), commits, lambda rev: None)
    assert outcome.culprit is None
    assert "could not re-run" in outcome.note
    report = render_bisect(_step(), commits, outcome)
    assert "4 commit(s)" in report and "could not re-run" in report


def test_render_bisect_reports_culprit_and_probes():
    from repro.bench.trend import BisectOutcome, render_bisect

    outcome = BisectOutcome(culprit="c3 subject 3", tested=[("c2", 1.0)])
    report = render_bisect(_step(), ["c3 subject 3", "c2 s"], outcome)
    assert "bisected to a single commit" in report
    assert "c3 subject 3" in report and "re-ran at c2: 1" in report


def test_run_scenario_at_revision_survives_bad_revision(tmp_path, monkeypatch):
    from repro.bench.trend import run_scenario_at_revision

    monkeypatch.chdir(tmp_path)  # not a checkout: worktree add fails cleanly
    assert run_scenario_at_revision(
        "definitely-not-a-rev", "throughput_smoke", "verl:7B/16gpu",
        "throughput_tok_s",
    ) is None


# --------------------------------------------------------------------------- system CLI surface
def test_cli_list_systems_renders_capability_table(capsys):
    assert bench_main(["list", "--systems", "-v"]) == 0
    out = capsys.readouterr().out
    for name in ("verl", "one_step", "stream_gen", "areal", "laminar",
                 "laminar_norepack", "semi_sync"):
        assert name in out
    assert "weight-sync" in out and "repack" in out


def test_cli_run_unknown_system_fails_with_registered_names(capsys):
    code = bench_main(["run", "--scenario", "throughput_smoke",
                       "--system", "nope", "--no-save"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown system 'nope'" in err
    assert "laminar" in err and "semi_sync" in err


def test_cli_run_system_filter_restricts_the_grid(cheap_scenario, capsys):
    # The weight_sync fixture scenario only evaluates laminar; filtering to a
    # system no selected scenario evaluates is an explicit error...
    code = bench_main(["run", "--scenario", cheap_scenario.id,
                       "--system", "verl", "--no-save"])
    assert code == 2
    assert "no selected scenario evaluates" in capsys.readouterr().err
    # ...while filtering to a subset runs only that subset.
    code = bench_main(["run", "--scenario", cheap_scenario.id,
                       "--system", "laminar", "--no-save"])
    out = capsys.readouterr().out
    assert code == 0
    assert "laminar:32B/128gpu" in out


def test_cli_run_system_filter_preserves_unit_seeds(tmp_path, capsys):
    """The --system filter drops units after grid expansion, so a surviving
    unit keeps its original grid-index seed and its metrics are bit-identical
    to the same unit in a full-grid run (a filtered --compare against a
    full-grid baseline must gate at delta 0.000)."""
    artifact = str(tmp_path / "BENCH_full_grid.json")
    assert bench_main(["run", "--scenario", "semi_sync",
                       "--export", artifact]) == 0
    capsys.readouterr()
    # semi_sync is grid index 1 of the scenario; filtering must not renumber
    # it to index 0 (which would shift its seed and fail the zero-tolerance
    # gate).
    code = bench_main(["run", "--scenario", "semi_sync", "--system", "semi_sync",
                       "--compare", "--baseline", artifact, "--tolerance", "0",
                       "--no-save"])
    out = capsys.readouterr().out
    assert code == 0
    assert "within-tolerance" in out and "no regression" in out


def test_cli_run_system_filter_never_saves_partial_default_artifacts(
        tmp_path, capsys, monkeypatch):
    """A --system run executes a partial grid; persisting it over the
    canonical BENCH_<id>.json would silently stop gating the dropped units,
    so default-path saving is suppressed (explicit --export stays allowed)."""
    monkeypatch.chdir(tmp_path)
    assert bench_main(["run", "--scenario", "semi_sync",
                       "--system", "semi_sync"]) == 0
    out = capsys.readouterr().out
    assert "not saved" in out
    assert not (tmp_path / "BENCH_semi_sync.json").exists()
    export = tmp_path / "partial.json"
    assert bench_main(["run", "--scenario", "semi_sync", "--system", "semi_sync",
                       "--export", str(export)]) == 0
    capsys.readouterr()
    assert export.exists()

"""Package metadata for the Laminar reproduction.

Kept as ``setup.py`` (rather than pyproject.toml) so editable installs work
without the ``wheel``/``build`` packages in minimal environments:
``pip install -e . --no-build-isolation``.
"""

from setuptools import find_packages, setup

setup(
    name="laminar-repro",
    version="1.5.0",
    description=(
        "Reproduction of 'Laminar: A Scalable Asynchronous RL Post-Training "
        "Framework' — simulator, baselines, experiment drivers and the "
        "repro-bench scenario matrix runner with distributed execution "
        "backends (coordinator + worker fleet)."
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    extras_require={"test": ["pytest", "pytest-benchmark"]},
    entry_points={
        "console_scripts": [
            "repro-bench = repro.bench.cli:main",
        ],
    },
)
